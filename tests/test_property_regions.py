"""Property tests over randomly generated regions.

A hypothesis strategy builds small random-but-valid kernels; every
generated region must validate, print/parse round-trip, survive all the
static analyses, and produce finite positive times in both simulators and
both models.  This is the fuzzing layer over the whole pipeline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ProgramAttributeDatabase
from repro.ipda import analyze_region
from repro.ir import (
    Region,
    parse_region,
    region_to_text,
    validate_region,
)
from repro.machines import PLATFORM_P9_V100, POWER9, TESLA_V100
from repro.models import predict_both
from repro.sim import simulate_cpu, simulate_gpu_kernel

_COUNTER = {"n": 0}


@st.composite
def regions(draw) -> Region:
    """A random small kernel: 1-2D band, optional inner loop, 1-3 accesses."""
    _COUNTER["n"] += 1
    r = Region(f"fuzz{_COUNTER['n']}")
    n = r.param("n")
    m = r.param("m")

    rank2 = draw(st.booleans())
    has_inner = draw(st.booleans())
    collapse = rank2 and draw(st.booleans())

    if rank2:
        A = r.array("A", (n, m))
        B = r.array("B", (n, m), output=True)
    else:
        A = r.array("A", (n,))
        B = r.array("B", (n,), output=True)
    c = r.scalar("c")

    stride_kind = draw(st.sampled_from(["unit", "row", "offset"]))

    def load(i, j=None):
        if not rank2:
            if stride_kind == "offset":
                return A[i + 1]
            return A[i]
        if stride_kind == "row":
            return A[j if j is not None else 0, i]  # transposed walk
        if stride_kind == "offset":
            return A[i, (j if j is not None else 0) + 1]
        return A[i, j if j is not None else 0]

    with r.parallel_loop("i", n - 2, start=0) as i:
        if collapse:
            with r.parallel_loop("j", m - 2) as j:
                r.store(B[i, j], load(i, j) * c + 1.0)
        elif rank2:
            if has_inner:
                acc = r.local("acc", 0.0)
                with r.loop("j", m - 2) as j:
                    r.assign(acc, acc + load(i, j) * c)
                r.store(B[i, 0], acc)
            else:
                r.store(B[i, 0], load(i, 1) + c)
        else:
            r.store(B[i], load(i) * c)
    return r


ENV = {"n": 64, "m": 64}


@given(region=regions())
@settings(max_examples=25, deadline=None)
def test_generated_regions_validate(region):
    validate_region(region)


@given(region=regions())
@settings(max_examples=25, deadline=None)
def test_generated_regions_roundtrip(region):
    text = region_to_text(region)
    parsed = parse_region(text)
    validate_region(parsed)
    assert region_to_text(parsed) == text


@given(region=regions())
@settings(max_examples=20, deadline=None)
def test_generated_regions_analyse(region):
    bound = analyze_region(region).bind(ENV)
    coal, uncoal = bound.counts()
    assert coal + uncoal == len(bound.accesses) >= 2


@given(region=regions())
@settings(max_examples=12, deadline=None)
def test_generated_regions_simulate_and_predict(region):
    cpu = simulate_cpu(region, POWER9, ENV)
    gpu = simulate_gpu_kernel(region, TESLA_V100, ENV)
    assert 0 < cpu.seconds < 10
    assert 0 < gpu.seconds < 10

    db = ProgramAttributeDatabase()
    bound = db.compile_region(region).bind(ENV)
    sel = predict_both(bound, PLATFORM_P9_V100)
    assert 0 < sel.cpu.seconds < 100
    assert 0 < sel.gpu.seconds < 100
    assert sel.predicted_speedup > 0
