"""Golden-snapshot regression test for the device-selection table.

``tests/golden/selection.json`` pins, for every Polybench region on the
paper's POWER9+V100 platform (benchmark datasets), the device the
model-guided policy chooses and the predicted CPU/GPU times.  Any model
or policy change that silently flips a selection fails here; intentional
changes are recorded with ``pytest tests/test_golden_selection.py
--update-golden``.
"""

import json
from pathlib import Path

import pytest

from repro.machines import platform_by_name
from repro.polybench import SUITE
from repro.runtime import ModelGuided, OffloadingRuntime

GOLDEN = Path(__file__).parent / "golden" / "selection.json"


def build_selection_table() -> dict[str, dict]:
    platform = platform_by_name("p9-v100")
    runtime = OffloadingRuntime(platform, policy=ModelGuided())
    table: dict[str, dict] = {}
    for spec in SUITE:
        env = spec.env("benchmark")
        for region in spec.build():
            runtime.compile_region(region)
            rec = runtime.launch(region.name, env)
            table[region.name] = {
                "chosen": rec.target,
                "pred_cpu_s": rec.prediction.cpu.seconds,
                "pred_gpu_s": rec.prediction.gpu.seconds,
            }
    return table


def test_selection_matches_golden(request):
    table = build_selection_table()
    if request.config.getoption("--update-golden"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(table, indent=2, sort_keys=True) + "\n")
        pytest.skip("golden selection table regenerated")
    assert GOLDEN.exists(), (
        "tests/golden/selection.json is missing; generate it with "
        "`pytest tests/test_golden_selection.py --update-golden`"
    )
    golden = json.loads(GOLDEN.read_text())
    assert sorted(table) == sorted(golden), (
        "the Polybench region set changed; rerun with --update-golden "
        "if the change is intentional"
    )
    for name in sorted(table):
        got, want = table[name], golden[name]
        assert got["chosen"] == want["chosen"], (
            f"{name}: selection flipped {want['chosen']} -> {got['chosen']} "
            "(rerun with --update-golden if intentional)"
        )
        for key in ("pred_cpu_s", "pred_gpu_s"):
            assert got[key] == pytest.approx(want[key], rel=1e-9), (
                f"{name}: {key} drifted from {want[key]} to {got[key]}"
            )
