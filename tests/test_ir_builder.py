"""Unit tests for the IR builder, regions and printer."""

import pytest

from repro.ir import (
    Bin,
    Load,
    Loop,
    Region,
    Store,
    ValidationError,
    cmp,
    region_to_text,
    select,
    sqrt,
    validate_region,
)
from repro.symbolic import Const, Sym

from .kernels import build_gemm, build_vecadd


class TestBuilder:
    def test_gemm_validates(self):
        validate_region(build_gemm())

    def test_vecadd_validates(self):
        validate_region(build_vecadd())

    def test_array_rank_checked(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n, n))
        with pytest.raises(ValueError):
            A[Sym("i")]  # rank-2 array, one index

    def test_duplicate_array_rejected(self):
        r = Region("r")
        n = r.param("n")
        r.array("A", (n,))
        with pytest.raises(ValueError):
            r.array("A", (n,))

    def test_duplicate_scalar_rejected(self):
        r = Region("r")
        r.scalar("alpha")
        with pytest.raises(ValueError):
            r.scalar("alpha")

    def test_duplicate_param_rejected(self):
        r = Region("r")
        r.param("n")
        with pytest.raises(ValueError):
            r.param("n")

    def test_shadowed_loop_var_rejected(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            with pytest.raises(ValueError):
                with r.loop("i", n):
                    pass
            r.store(A[i], 0.0)

    def test_locals_get_unique_names(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            a = r.local("acc", 0.0)
            b = r.local("acc", 1.0)
            r.store(A[i], a + b)
        assert a.name != b.name

    def test_store_requires_array_element(self):
        r = Region("r")
        n = r.param("n")
        r.array("A", (n,), output=True)
        with r.parallel_loop("i", n):
            with pytest.raises(TypeError):
                r.store(3.0, 1.0)  # type: ignore[arg-type]

    def test_assign_requires_local(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            with pytest.raises(TypeError):
                r.assign(A[i], 1.0)  # type: ignore[arg-type]


class TestRegionQueries:
    def test_parallel_band_single(self):
        r = build_gemm()
        band = r.parallel_band()
        assert len(band) == 1
        assert band[0].var.name == "i"

    def test_parallel_band_collapse2(self):
        r = Region("c2")
        n, m = r.param_tuple("n", "m")
        A = r.array("A", (n, m), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", m) as j:
                r.store(A[i, j], 0.0)
        assert [lp.var.name for lp in r.parallel_band()] == ["i", "j"]
        assert r.parallel_iterations() == Sym("n") * Sym("m")

    def test_no_parallel_loop_raises(self):
        r = Region("seq")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.loop("i", n) as i:
            r.store(A[i], 0.0)
        with pytest.raises(ValueError):
            r.parallel_band()

    def test_transfer_bytes_gemm(self):
        r = build_gemm()
        env = {"ni": 10, "nj": 20, "nk": 30}
        to_dev, to_host = r.transfer_bytes(env)
        # A: 10*30, B: 30*20, C: 10*20 floats (4 bytes)
        assert to_dev == (300 + 600 + 200) * 4
        assert to_host == 200 * 4

    def test_free_symbols(self):
        r = build_gemm()
        assert r.free_symbols() == {"ni", "nj", "nk"}


class TestValueExpressions:
    def test_operator_sugar_builds_tree(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,))
        e = A[Sym("i")] * 2.0 + 1.0
        assert isinstance(e, Bin) and e.op == "add"
        assert isinstance(e.lhs, Bin) and e.lhs.op == "mul"

    def test_sqrt_and_select(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,))
        x = A[Sym("i")]
        guarded = select(cmp("le", x, 0.1), 1.0, sqrt(x))
        assert guarded.if_true.value == 1.0

    def test_load_flat_index_row_major(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n, n))
        load = A[Sym("i"), Sym("j")]
        assert load.flat_index() == Sym("i") * Sym("n") + Sym("j")

    def test_unknown_ops_rejected(self):
        from repro.ir import ConstV, Un

        with pytest.raises(ValueError):
            Bin("xor", ConstV(1.0), ConstV(2.0))
        with pytest.raises(ValueError):
            Un("sin", ConstV(1.0))


class TestValidator:
    def test_catches_undeclared_array(self):
        r = Region("bad")
        n = r.param("n")
        r.array("A", (n,), output=True)
        other = Region("other")
        m = other.param("m")
        B = other.array("B", (m,))
        with r.parallel_loop("i", n) as i:
            r.store(B[i], 1.0)  # B belongs to another region
        with pytest.raises(ValidationError):
            validate_region(r)

    def test_catches_unbound_index_symbol(self):
        r = Region("bad")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n):
            r.store(A[Sym("q")], 1.0)  # q is neither param nor loop var
        with pytest.raises(ValidationError):
            validate_region(r)

    def test_catches_inner_parallel_loop(self):
        r = Region("bad")
        n = r.param("n")
        A = r.array("A", (n, n), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", n) as j:
                r.store(A[i, j], 0.0)
        # graft an illegal inner parallel loop under the sequential j loop
        inner = r.body[0].body[0]
        assert isinstance(inner, Loop)
        from repro.ir import IterVar

        bad = Loop(IterVar("k"), Const(4), [], parallel=True)
        inner.body.append(bad)
        with pytest.raises(ValidationError):
            validate_region(r)


class TestPrinter:
    def test_gemm_text_is_stable(self):
        text = region_to_text(build_gemm())
        assert "target region gemm" in text
        assert "parallel for (i = 0" in text
        assert "inout f32 C[[ni]][[nj]]" in text

    def test_if_renders(self):
        r = Region("r")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.0)):
                r.store(A[i], 0.0)
        assert "if (A[[i]] > 0)" in region_to_text(r)
