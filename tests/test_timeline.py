"""Tests for the llvm-mca-style timeline view."""

from repro.machines import POWER9
from repro.mca import MachineOp, render_timeline


def op(opcode, dest=-1, srcs=()):
    return MachineOp(opcode, dest, tuple(srcs))


class TestTimeline:
    def test_empty(self):
        assert "empty" in render_timeline([], POWER9)

    def test_single_op(self):
        text = render_timeline([op("fadd", 0)], POWER9)
        assert "Timeline view" in text
        assert "[  0]" in text
        assert "E" in text

    def test_dependency_shows_wait_states(self):
        ops = [op("load", 0), op("fma", 1, (0,))]
        text = render_timeline(ops, POWER9)
        # the dependent fma must wait ('=') for the load
        fma_row = [l for l in text.splitlines() if "fma" in l][0]
        assert "=" in fma_row
        assert "E" in fma_row

    def test_execution_span_matches_latency(self):
        text = render_timeline([op("fdiv", 0)], POWER9)
        row = [l for l in text.splitlines() if "fdiv" in l][0]
        # D + e... + E cells together span the full latency
        span = row.count("D") + row.count("e") + row.count("E")
        assert span == POWER9.latency("fdiv")

    def test_truncation_annotations(self):
        many = [op("fadd", i) for i in range(60)]
        text = render_timeline(many, POWER9, max_ops=10)
        assert "more ops not shown" in text
        chain = [op("fdiv", 0)] + [
            op("fdiv", i, (i - 1,)) for i in range(1, 12)
        ]
        text = render_timeline(chain, POWER9, max_cycles=40)
        assert "continues to cycle" in text

    def test_ipc_reported(self):
        text = render_timeline([op("iadd", i) for i in range(8)], POWER9)
        assert "IPC" in text

    def test_latency_override_respected(self):
        ops = [op("load", 0), op("fadd", 1, (0,))]
        slow = render_timeline(
            ops,
            POWER9,
            latency_of=lambda o: 40.0 if o.opcode == "load" else 6.0,
            max_cycles=60,
        )
        load_row = [l for l in slow.splitlines() if "load" in l][0]
        span = load_row.count("D") + load_row.count("e") + load_row.count("E")
        assert span == 40
