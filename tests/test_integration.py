"""Cross-module integration and property tests.

Invariants that must hold across the whole pipeline: determinism,
monotonicity in problem size and resources, consistency between the
binary and multi-device runtimes, and conservation laws of the launch
records.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ProgramAttributeDatabase
from repro.machines import PLATFORM_P8_K80, PLATFORM_P9_V100
from repro.models import predict_both
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime, Oracle
from repro.sim import simulate_cpu, simulate_gpu_kernel

from .kernels import build_gemm, build_vecadd


class TestDeterminism:
    def test_predictions_are_pure(self):
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(
            {"ni": 777, "nj": 777, "nk": 777}
        )
        a = predict_both(bound, PLATFORM_P9_V100)
        b = predict_both(bound, PLATFORM_P9_V100)
        assert a.cpu.seconds == b.cpu.seconds
        assert a.gpu.seconds == b.gpu.seconds

    def test_simulators_are_pure(self):
        env = {"n": 3000}
        a = simulate_cpu(build_vecadd(), PLATFORM_P9_V100.host, env)
        b = simulate_cpu(build_vecadd(), PLATFORM_P9_V100.host, env)
        assert a.seconds == b.seconds

    def test_region_rebuild_gives_same_numbers(self):
        """Two independently-built copies of a kernel measure identically."""
        env = {"ni": 512, "nj": 512, "nk": 512}
        (g1,) = benchmark_by_name("gemm").build()
        (g2,) = benchmark_by_name("gemm").build()
        t1 = simulate_gpu_kernel(g1, PLATFORM_P9_V100.gpu, env).seconds
        t2 = simulate_gpu_kernel(g2, PLATFORM_P9_V100.gpu, env).seconds
        assert t1 == t2


class TestMonotonicity:
    @given(n=st.sampled_from([512, 1024, 2048, 4096]))
    @settings(max_examples=4, deadline=None)
    def test_gpu_prediction_monotone_in_size(self, n):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_gemm())
        small = predict_both(attrs.bind({"ni": n, "nj": n, "nk": n}), PLATFORM_P9_V100)
        big = predict_both(
            attrs.bind({"ni": 2 * n, "nj": 2 * n, "nk": 2 * n}), PLATFORM_P9_V100
        )
        assert big.gpu.seconds > small.gpu.seconds
        assert big.cpu.seconds > small.cpu.seconds

    def test_better_bus_never_hurts(self):
        env = {"ni": 2048, "nj": 2048, "nk": 2048}
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(env)
        import dataclasses

        from repro.machines import AcceleratorSlot, PCIE3_X16, Platform

        slow = Platform(
            "slow-bus",
            PLATFORM_P9_V100.host,
            (AcceleratorSlot(PLATFORM_P9_V100.gpu, PCIE3_X16),),
        )
        fast_pred = predict_both(bound, PLATFORM_P9_V100)
        slow_pred = predict_both(bound, slow)
        assert fast_pred.gpu.seconds <= slow_pred.gpu.seconds


class TestRuntimeConsistency:
    def test_model_guided_never_beats_oracle(self):
        for plat in (PLATFORM_P9_V100, PLATFORM_P8_K80):
            guided = OffloadingRuntime(plat, policy=ModelGuided())
            oracle = OffloadingRuntime(plat, policy=Oracle())
            for rt in (guided, oracle):
                rt.compile_region(build_gemm())
            env = {"ni": 1024, "nj": 1024, "nk": 1024}
            g = guided.launch("gemm", env)
            o = oracle.launch("gemm", env)
            assert o.executed_seconds <= g.executed_seconds + 1e-12

    def test_launch_record_conservation(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(build_vecadd())
        rec = rt.launch("vecadd", {"n": 1 << 20})
        # the decision is consistent with the prediction
        assert (rec.target == "gpu") == rec.prediction.offload
        # the oracle bound is respected by definition
        assert rec.oracle_seconds <= rec.executed_seconds + 1e-12

    def test_prediction_independent_of_measurement(self):
        """The policy sees only predictions, never the simulated truth."""
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(build_gemm())
        env = {"ni": 640, "nj": 640, "nk": 640}
        rec = rt.launch("gemm", env)
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(env)
        standalone = predict_both(
            bound,
            PLATFORM_P9_V100,
            calibration=rt.policy._calibration(PLATFORM_P9_V100, None),
        )
        assert rec.prediction.predicted_speedup == pytest.approx(
            standalone.predicted_speedup
        )


class TestCrossGenerationConsistency:
    def test_v100_platform_never_slower_on_gpu_kernel_time(self):
        """Kernel-only time on the newer device is never worse (same code)."""
        env = {"ni": 1024, "nj": 1024, "nk": 1024}
        (gemm,) = benchmark_by_name("gemm").build()
        k80 = simulate_gpu_kernel(gemm, PLATFORM_P8_K80.gpu, env)
        v100 = simulate_gpu_kernel(gemm, PLATFORM_P9_V100.gpu, env)
        assert v100.seconds < k80.seconds

    def test_both_platforms_full_suite_finite(self):
        from repro.experiments import measure_suite

        for plat in ("p8-k80", "p9-v100"):
            for mode in ("test", "benchmark"):
                for m in measure_suite(plat, mode):
                    assert 0 < m.cpu_seconds < 1e4
                    assert 0 < m.gpu_seconds < 1e4


class TestPortability:
    def test_generic_x86_platform_end_to_end(self):
        """The framework is machine-agnostic: a laptop-class host works."""
        from repro.machines import (
            AcceleratorSlot,
            GENERIC_X86,
            PCIE3_X16,
            Platform,
            TESLA_K80,
        )
        from repro.runtime import ModelGuided, OffloadingRuntime

        laptop = Platform(
            "x86+K80", GENERIC_X86, (AcceleratorSlot(TESLA_K80, PCIE3_X16),)
        )
        rt = OffloadingRuntime(laptop, policy=ModelGuided())
        (gemm,) = benchmark_by_name("gemm").build()
        rt.compile_region(gemm)
        rec = rt.launch("gemm", {"ni": 1024, "nj": 1024, "nk": 1024})
        assert rec.target in ("cpu", "gpu")
        assert rec.cpu_seconds > 0 and rec.gpu_seconds > 0
