"""Property tests: the MCA scoreboard respects its own machine rules.

For randomly generated op sequences the produced schedule must satisfy,
cycle by cycle: dependency ordering (no op issues before its sources are
ready), port capacity (never more concurrent ops than units of a port),
and dispatch-width ordering.  This cross-validates the analytic scheduler
against the rules it claims to implement.
"""

import math

import pytest

from hypothesis import given, settings, strategies as st

from repro.machines import POWER8, POWER9
from repro.mca import MachineOp, UNPIPELINED, schedule_ops

_OPCODES = ["iadd", "fadd", "fmul", "fma", "load", "store", "fdiv", "cmp"]


@st.composite
def op_sequences(draw):
    n = draw(st.integers(1, 24))
    ops = []
    for i in range(n):
        opcode = draw(st.sampled_from(_OPCODES))
        # sources reference earlier destinations (SSA-like) or externals
        nsrc = draw(st.integers(0, 2))
        srcs = tuple(
            draw(st.integers(0, max(0, i - 1))) if i > 0 else 1000 + i
            for _ in range(nsrc)
        )
        dest = -1 if opcode == "store" else i
        ops.append(MachineOp(opcode, dest, srcs))
    return ops


@given(ops=op_sequences(), cpu=st.sampled_from([POWER8, POWER9]))
@settings(max_examples=60, deadline=None)
def test_dependencies_respected(ops, cpu):
    res = schedule_ops(ops, cpu)
    ready = {}
    for op, issue in zip(ops, res.issue_cycle):
        for s in op.srcs:
            if s in ready:
                assert issue >= ready[s] - 1e-9, "issued before source ready"
        if op.dest >= 0:
            ready[op.dest] = issue + cpu.latency(op.opcode)


@given(ops=op_sequences(), cpu=st.sampled_from([POWER8, POWER9]))
@settings(max_examples=60, deadline=None)
def test_port_capacity_respected(ops, cpu):
    res = schedule_ops(ops, cpu)
    # reconstruct per-port busy intervals and check concurrent occupancy
    intervals: dict[str, list[tuple[float, float]]] = {}
    for op, issue in zip(ops, res.issue_cycle):
        occ = cpu.latency(op.opcode) if op.opcode in UNPIPELINED else 1.0
        intervals.setdefault(op.port, []).append((issue, issue + occ))
    for port, ivs in intervals.items():
        units = cpu.ports.get(port, 1)
        events = sorted(
            [(s, 1) for s, _ in ivs] + [(e, -1) for _, e in ivs],
            key=lambda t: (t[0], t[1]),
        )
        concurrent = 0
        for _, delta in events:
            concurrent += delta
            assert concurrent <= units, f"port {port} oversubscribed"


@given(ops=op_sequences(), cpu=st.sampled_from([POWER8, POWER9]))
@settings(max_examples=60, deadline=None)
def test_dispatch_width_respected(ops, cpu):
    res = schedule_ops(ops, cpu)
    for idx, issue in enumerate(res.issue_cycle):
        assert issue >= math.floor(idx / cpu.dispatch_width) - 1e-9


@given(ops=op_sequences())
@settings(max_examples=40, deadline=None)
def test_total_cycles_bounds(ops):
    res = schedule_ops(ops, POWER9)
    # no schedule is shorter than the longest single-op latency or the
    # issue-width lower bound, nor longer than fully serialized execution
    longest = max(POWER9.latency(o.opcode) for o in ops)
    serial = sum(POWER9.latency(o.opcode) for o in ops)
    assert res.total_cycles >= longest
    assert res.total_cycles >= len(ops) / POWER9.dispatch_width - 1
    assert res.total_cycles <= serial + len(ops)


@given(ops=op_sequences())
@settings(max_examples=40, deadline=None)
def test_ipc_consistent(ops):
    res = schedule_ops(ops, POWER9)
    assert res.ipc * res.total_cycles == pytest.approx(len(ops))
