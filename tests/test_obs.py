"""Tests for the observability layer: tracer, metrics, exporters.

Covers the three contracts ISSUE demands of ``repro.obs``:

* determinism — two identical seeded sweeps serialize byte-identically,
* transparency — a runtime with the default :data:`NULL_TRACER` produces
  launch records bit-identical to an instrumented one,
* structure — spans nest ``compile`` → ``analyse`` and ``launch`` →
  ``predict`` → ``dispatch`` for every Polybench region, and the JSON
  exporter emits valid Chrome trace-event documents.
"""

import json

import pytest

from repro.experiments import run_trace
from repro.machines import platform_by_name
from repro.obs import (
    DEFAULT_LOG_ERROR_BUCKETS,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    current_tracer,
    render_trace_text,
)
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, MultiDeviceRuntime, OffloadingRuntime


class TestTracer:
    def test_spans_record_interval_and_attrs(self):
        tr = Tracer()
        with tr.span("outer", region="gemm") as sp:
            sp.set("target", "gpu")
        (rec,) = tr.spans
        assert rec.name == "outer"
        assert rec.attrs == {"region": "gemm", "target": "gpu"}
        assert rec.end_ts is not None and rec.end_ts > rec.start_ts

    def test_children_nest_strictly_inside_parents(self):
        tr = Tracer()
        with tr.span("parent"):
            with tr.span("child"):
                pass
        parent, child = tr.spans
        assert parent.depth == 0 and child.depth == 1
        assert parent.start_ts < child.start_ts
        assert child.end_ts < parent.end_ts

    def test_timestamps_strictly_increase_without_a_clock(self):
        tr = Tracer()
        for _ in range(5):
            with tr.span("s"):
                pass
        stamps = [t for rec in tr.spans for t in (rec.start_ts, rec.end_ts)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_exception_annotates_and_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        (rec,) = tr.spans
        assert rec.attrs["error"] == "RuntimeError"
        assert rec.end_ts is not None

    def test_instants_stamp_inside_the_running_span(self):
        tr = Tracer()
        with tr.span("dispatch") as sp:
            sp.event("fault", device="gpu")
        (inst,) = tr.instants
        assert inst.name == "fault"
        assert inst.attrs == {"device": "gpu"}
        assert tr.spans[0].start_ts < inst.ts < tr.spans[0].end_ts

    def test_clear_resets_everything(self):
        tr = Tracer()
        with tr.span("s"):
            tr.instant("i")
        tr.clear()
        assert len(tr) == 0 and not tr.instants
        with tr.span("again"):
            pass
        assert tr.spans[0].start_ts == 1  # sequence restarted

    def test_activation_pushes_and_pops(self):
        tr = Tracer()
        assert current_tracer() is NULL_TRACER
        with tr.activate():
            assert current_tracer() is tr
            inner = Tracer()
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is tr
        assert current_tracer() is NULL_TRACER


class TestNullTracer:
    def test_is_the_default_current_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0

    def test_span_is_a_shared_noop(self):
        a = NULL_TRACER.span("x", region="gemm")
        b = NULL_TRACER.span("y")
        assert a is b  # allocation-free fast path
        with a as sp:
            sp.set("k", 1)
            sp.event("e")
        assert NULL_TRACER.spans == ()

    def test_activate_never_touches_global_state(self):
        with NULL_TRACER.activate():
            assert current_tracer() is NULL_TRACER


class TestMetrics:
    def test_counters_are_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("launches_total", device="gpu")
        b = reg.counter("launches_total", device="gpu")
        assert a is b
        a.inc()
        b.inc(2)
        assert reg.snapshot()["counters"]["launches_total{device=gpu}"] == 3

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("c", b="2", a="1").inc()
        reg.counter("c", a="1", b="2").inc()
        assert reg.snapshot()["counters"] == {"c{a=1,b=2}": 2}

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_bucketing(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # le_1, le_10, le_inf
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z").inc()
            reg.counter("a", x="1").inc(3)
            reg.gauge("g").set(0.25)
            reg.histogram("h").observe(0.15)
            return reg

        one, two = build().snapshot(), build().snapshot()
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
        assert list(one["counters"]) == ["a{x=1}", "z"]  # sorted keys
        hist = one["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["buckets"]["le_0.2"] == 1
        assert set(hist["buckets"]) == {
            f"le_{b:g}" for b in DEFAULT_LOG_ERROR_BUCKETS
        } | {"le_inf"}


class TestQuantileSketch:
    """Deterministic streaming quantiles (the replay overhead gates)."""

    def test_exact_nearest_rank_quantiles(self):
        s = QuantileSketch()
        for v in range(1, 101):  # 1..100, exact under quantization
            s.observe(float(v))
        assert s.p50 == 50.0
        assert s.p95 == 95.0
        assert s.p99 == 99.0
        assert s.quantile(1.0) == 100.0
        assert s.count == 100
        assert s.sum == pytest.approx(5050.0)

    def test_single_observation_is_every_quantile(self):
        s = QuantileSketch()
        s.observe(0.25)
        assert s.p50 == s.p95 == s.p99 == 0.25

    def test_empty_quantiles_are_nan(self):
        import math

        assert math.isnan(QuantileSketch().p50)

    def test_quantile_argument_validated(self):
        s = QuantileSketch()
        s.observe(1.0)
        with pytest.raises(ValueError):
            s.quantile(0.0)
        with pytest.raises(ValueError):
            s.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(significant_digits=0)

    def test_nonfinite_counted_separately(self):
        import math

        s = QuantileSketch()
        s.observe(1.0)
        s.observe(math.inf)
        s.observe(math.nan)
        assert s.count == 1 and s.nonfinite == 2
        assert s.p99 == 1.0  # quantiles unpoisoned

    def test_quantization_buckets_close_values(self):
        s = QuantileSketch(significant_digits=2)
        s.observe(0.1234)
        s.observe(0.1243)  # same 2-sig-fig bucket
        s.observe(0.13)
        assert s.counts == {0.12: 2, 0.13: 1}

    def test_order_independent_to_the_last_bit(self):
        values = [0.37 * i + 1e-9 for i in range(200)]
        a, b = QuantileSketch(), QuantileSketch()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.counts == b.counts
        assert a.sum == b.sum  # exact, not approx: fsum over sorted counts
        assert a.p99 == b.p99

    def test_merge_is_exact_and_validates_digits(self):
        whole, left, right = (QuantileSketch() for _ in range(3))
        for i in range(100):
            whole.observe(float(i))
            (left if i % 2 else right).observe(float(i))
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.p95 == whole.p95
        with pytest.raises(ValueError):
            left.merge(QuantileSketch(significant_digits=3))


class TestRegistryQuantiles:
    def test_get_or_create_and_snapshot_shape(self):
        reg = MetricsRegistry()
        sketch = reg.quantiles("dispatch_overhead_seconds")
        assert reg.quantiles("dispatch_overhead_seconds") is sketch
        sketch.observe(0.5)
        sketch.observe(float("nan"))
        snap = reg.snapshot()
        entry = snap["quantiles"]["dispatch_overhead_seconds"]
        assert entry["count"] == 1
        assert entry["nonfinite"] == 1
        assert entry["counts"] == {"0.5": 1}
        assert len(reg) == 1

    def test_merge_snapshot_folds_worker_sketches(self):
        worker_a, worker_b, whole = (MetricsRegistry() for _ in range(3))
        for i in range(50):
            value = 0.001 * (i + 1)
            whole.quantiles("lat").observe(value)
            (worker_a if i % 2 else worker_b).quantiles("lat").observe(value)
        merged = MetricsRegistry()
        merged.merge_snapshot(worker_a.snapshot())
        merged.merge_snapshot(worker_b.snapshot())
        assert merged.quantiles("lat").counts == whole.quantiles("lat").counts
        assert merged.quantiles("lat").p99 == whole.quantiles("lat").p99

    def test_merge_snapshot_rejects_digit_mismatch(self):
        coarse = MetricsRegistry()
        coarse.quantiles("lat", significant_digits=2).observe(0.123)
        fine = MetricsRegistry()
        fine.quantiles("lat").observe(0.123)
        with pytest.raises(ValueError):
            fine.merge_snapshot(coarse.snapshot())


class TestMergeSnapshot:
    """Worker-registry merging for the parallel sweep engine.

    Counters and histograms must merge *order-independently* into
    exactly what a single-process sweep records; gauges are last-write-
    wins, decided by merge order.
    """

    @staticmethod
    def _observe(reg: MetricsRegistry, values):
        for v in values:
            reg.counter("launches_total", device="gpu").inc()
            reg.histogram("err", buckets=(0.1, 1.0)).observe(v)

    def test_split_registries_merge_to_single_process_totals(self):
        # dyadic values: float addition is exact for them under any
        # grouping, so snapshot equality can be exact
        values = [0.0625, 0.5, 2.0, 0.03125, 5.0]
        single = MetricsRegistry()
        self._observe(single, values)

        merged = MetricsRegistry()
        for chunk in (values[:2], values[2:4], values[4:]):
            worker = MetricsRegistry()
            self._observe(worker, chunk)
            merged.merge_snapshot(worker.snapshot())
        assert merged.snapshot() == single.snapshot()

    def test_merge_is_order_independent_for_counters_and_histograms(self):
        chunks = [[0.05, 0.5], [2.0], [0.07, 5.0]]
        snaps = []
        for chunk in chunks:
            worker = MetricsRegistry()
            self._observe(worker, chunk)
            snaps.append(worker.snapshot())

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            forward.merge_snapshot(s)
        for s in reversed(snaps):
            backward.merge_snapshot(s)
        f, b = forward.snapshot(), backward.snapshot()
        assert f["counters"] == b["counters"]
        fh, bh = f["histograms"]["err"], b["histograms"]["err"]
        assert fh["buckets"] == bh["buckets"]
        assert fh["count"] == bh["count"]
        assert fh["sum"] == pytest.approx(bh["sum"], rel=1e-12)

    def test_gauges_take_the_last_merged_write(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("clock").set(1.0)
        second.gauge("clock").set(2.0)
        merged = MetricsRegistry()
        merged.merge_snapshot(first.snapshot())
        merged.merge_snapshot(second.snapshot())
        assert merged.snapshot()["gauges"]["clock"] == 2.0

    def test_merge_into_populated_registry_adds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        other = MetricsRegistry()
        other.counter("c").inc(3)
        reg.merge_snapshot(other.snapshot())
        assert reg.snapshot()["counters"]["c"] == 5

    def test_mismatched_histogram_bounds_refuse_to_merge(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", buckets=(5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_merge_recovers_bucket_bounds_from_snapshot(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(0.25, 4.0)).observe(3.0)
        merged = MetricsRegistry()
        merged.merge_snapshot(worker.snapshot())
        assert merged.snapshot() == worker.snapshot()

    def test_merged_suite_metrics_equal_single_process(self):
        """Satellite acceptance: per-worker sweep registries merge to the
        sequential sweep's counters/histogram counts."""
        seq = run_trace(mode="test")
        par = run_trace(mode="test", jobs=2)
        sm, pm = seq.metrics.snapshot(), par.metrics.snapshot()
        assert pm["counters"] == sm["counters"]
        for key, want in sm["histograms"].items():
            got = pm["histograms"][key]
            assert got["buckets"] == want["buckets"]
            assert got["count"] == want["count"]


class TestExporters:
    def _traced(self):
        tr = Tracer()
        with tr.span("launch", region="gemm") as sp:
            sp.event("fault", device="gpu")
            with tr.span("predict"):
                pass
        return tr

    def test_chrome_events_shape(self):
        events = chrome_trace_events(self._traced())
        assert events[0]["ph"] == "M"  # process_name metadata first
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["launch", "predict"]
        for e in xs:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["dur"] >= 0
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["name"] == "fault" and inst["s"] == "t"

    def test_chrome_json_is_valid_and_embeds_metrics(self):
        reg = MetricsRegistry()
        reg.counter("launches_total", device="gpu").inc()
        payload = json.loads(chrome_trace_json(self._traced(), reg))
        assert payload["displayTimeUnit"] == "ms"
        assert [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert (
            payload["otherData"]["metrics"]["counters"][
                "launches_total{device=gpu}"
            ]
            == 1
        )

    def test_text_render_shows_tree_and_tables(self):
        reg = MetricsRegistry()
        reg.counter("launches_total", device="gpu").inc()
        text = render_trace_text(self._traced(), reg)
        assert "launch" in text and "predict" in text
        assert "launches_total{device=gpu}" in text


def _suite_records(runtime, names=("gemm", "atax")):
    records = []
    for bench in names:
        spec = benchmark_by_name(bench)
        env = spec.env("test")
        for region in spec.build():
            runtime.compile_region(region)
            records.append(runtime.launch(region.name, env))
    return records


class TestTransparency:
    """A live tracer must never change what the runtimes record."""

    def test_offloading_records_bit_identical_with_tracer_on(self):
        platform = platform_by_name("p9-v100")
        plain = _suite_records(OffloadingRuntime(platform, policy=ModelGuided()))
        traced = _suite_records(
            OffloadingRuntime(
                platform,
                policy=ModelGuided(),
                tracer=Tracer(),
                metrics=MetricsRegistry(),
            )
        )
        assert plain == traced
        assert current_tracer() is NULL_TRACER  # activation fully unwound

    def test_multi_device_records_bit_identical_with_tracer_on(self):
        platform = platform_by_name("p9-v100")
        plain = _suite_records(MultiDeviceRuntime(platform), names=("gemm",))
        traced = _suite_records(
            MultiDeviceRuntime(
                platform, tracer=Tracer(), metrics=MetricsRegistry()
            ),
            names=("gemm",),
        )
        assert plain == traced

    def test_default_runtime_records_nothing(self):
        platform = platform_by_name("p9-v100")
        runtime = OffloadingRuntime(platform, policy=ModelGuided())
        _suite_records(runtime, names=("gemm",))
        assert runtime.tracer is NULL_TRACER
        assert len(runtime.tracer) == 0
        assert runtime.metrics is None


class TestDeterminism:
    def test_two_sweeps_serialize_byte_identically(self):
        one = run_trace(benchmarks=["gemm", "atax"])
        two = run_trace(benchmarks=["gemm", "atax"])
        assert one.chrome_json() == two.chrome_json()
        assert one.metrics.snapshot() == two.metrics.snapshot()
        assert one.render() == two.render()


class TestAcceptance:
    """The ISSUE acceptance criterion, verified over the whole suite."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_trace(mode="test")

    def test_every_region_nests_compile_analyse_predict_dispatch(self, sweep):
        spans = sweep.tracer.spans

        def within(inner, outer):
            return (
                outer.start_ts < inner.start_ts
                and inner.end_ts < outer.end_ts
            )

        def top(name, region):
            found = [
                s
                for s in spans
                if s.name == name
                and s.depth == 0
                and s.attrs.get("region") == region
            ]
            assert found, f"no top-level {name} span for {region}"
            return found[-1]

        for region in sweep.region_names:
            compile_span = top("compile", region)
            launch = top("launch", region)
            analyse = [
                s
                for s in spans
                if s.name == "analyse" and within(s, compile_span)
            ]
            assert analyse, f"compile({region}) has no analyse child"
            for stage in ("predict", "dispatch"):
                inner = [
                    s for s in spans if s.name == stage and within(s, launch)
                ]
                assert inner, f"launch({region}) has no {stage} child"
            predict = next(s for s in spans if s.name == "predict" and within(s, launch))
            dispatch = next(
                s for s in spans if s.name == "dispatch" and within(s, launch)
            )
            assert predict.end_ts < dispatch.start_ts  # pipeline order

    def test_chrome_json_is_well_formed(self, sweep):
        payload = json.loads(sweep.chrome_json())
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        for e in events:
            if e["ph"] == "X":
                assert isinstance(e["ts"], int) and e["dur"] >= 0
        names = {e["name"] for e in events}
        assert {"compile", "analyse", "launch", "predict", "dispatch"} <= names

    def test_metrics_cover_every_launch(self, sweep):
        snap = sweep.metrics.snapshot()
        launched = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("launches_total{")
        )
        assert launched == len(sweep.records)
        assert snap["gauges"]["sim_clock_seconds"] >= 0.0
        errors = [
            h
            for k, h in snap["histograms"].items()
            if k.startswith("prediction_abs_log_error{")
        ]
        assert errors and all(h["count"] > 0 for h in errors)
