"""Tests for the unified dispatch core (repro.runtime.dispatch).

Pins the three invariants docs/ROBUSTNESS.md promises for the core's
optional mechanisms:

* **bit-identity off** — attaching a budget-less, never-triggering
  hedge policy and never-saturated bulkheads leaves both runtimes'
  record streams byte-identical to plain ones, including under fault
  injection, drift sentinels, and full replay chaos;
* **budgets never refund** — property-fuzzed: ``remaining()`` is never
  negative, charges are monotone, refunds and nonfinite charges raise;
* **hedges are deterministic** — seeded chaos replays produce the exact
  same hedge triggers, winners, and completion times twice over.
"""

import json
import math
import random

import pytest

from repro.drift import DriftSentinel, Watchdog
from repro.faults.resilient import FALLBACK_BUDGET
from repro.machines import (
    NVLINK2,
    PCIE3_X16,
    PLATFORM_P9_V100,
    POWER9,
    TESLA_K80,
    TESLA_V100,
    AcceleratorSlot,
    Platform,
)
from repro.polybench import benchmark_by_name
from repro.replay import (
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    WorkloadConfig,
    generate_requests,
    score_run,
)
from repro.runtime import (
    FALLBACK_BULKHEAD,
    Budget,
    Bulkhead,
    DispatchCore,
    HedgePolicy,
    ModelGuided,
    MultiDeviceRuntime,
    OffloadingRuntime,
    scenario_by_name,
)

from .kernels import build_gemm, build_vecadd

ENV = {"ni": 512, "nj": 512, "nk": 512}
ENV_BIG = {"ni": 9600, "nj": 9600, "nk": 9600}  # the model picks gpu here

DUAL = Platform(
    "P9 + V100/NVLink + K80/PCIe",
    POWER9,
    (
        AcceleratorSlot(TESLA_V100, NVLINK2),
        AcceleratorSlot(TESLA_K80, PCIE3_X16),
    ),
)


class TestBudget:
    def test_charge_and_remaining(self):
        b = Budget(1.0)
        assert b.charge(0.25) == pytest.approx(0.75)
        assert b.remaining() == pytest.approx(0.75)
        assert not b.exhausted
        b.charge(0.75)
        assert b.exhausted

    def test_remaining_never_negative_under_fuzzed_charges(self):
        # property: whatever gets charged, the floor is clamped while
        # spent_s stays the honest (monotone) total
        rng = random.Random(20260808)
        for _ in range(200):
            b = Budget(rng.uniform(1e-6, 10.0))
            spent = 0.0
            for _ in range(rng.randrange(1, 30)):
                charge = rng.uniform(0.0, 1.0)
                b.charge(charge)
                spent += charge
                assert b.remaining() >= 0.0
                assert b.spent_s == pytest.approx(spent)
                assert b.exhausted == (b.spent_s >= b.total_s)

    @pytest.mark.parametrize("total", [0.0, -1.0, math.nan, math.inf])
    def test_invalid_total_rejected(self, total):
        with pytest.raises(ValueError):
            Budget(total)

    @pytest.mark.parametrize("charge", [-1e-9, math.nan, math.inf])
    def test_refunds_and_nonfinite_charges_raise(self, charge):
        b = Budget(1.0)
        with pytest.raises(ValueError):
            b.charge(charge)
        assert b.spent_s == 0.0


class TestBulkhead:
    def test_limit_validated(self):
        with pytest.raises(ValueError):
            Bulkhead(0)

    def test_books_block_until_finished(self):
        bh = Bulkhead(2)
        bh.book("v100", finish_s=1.0)
        bh.book("v100", finish_s=2.0)
        assert not bh.allows("v100", now=0.5)
        assert bh.allows("k80", now=0.5)  # isolation: other devices free
        assert bh.allows("v100", now=1.0)  # first booking finished
        assert bh.pending("v100", 1.5) == 1
        assert bh.pending("v100", 2.0) == 0

    def test_snapshot_accounts_rejections_deterministically(self):
        bh = Bulkhead(1)
        bh.book("b", 5.0)
        bh.book("a", 5.0)
        bh.reject("b")
        assert bh.snapshot() == {
            "limit": 1,
            "max_pending": {"a": 1, "b": 1},
            "rejections": {"b": 1},
        }


class TestHedgeResolve:
    def _resolve(self, **kwargs):
        return DispatchCore.hedge_resolve(("slow", 1.0), **kwargs)

    def test_no_plan_is_noop(self):
        assert (
            DispatchCore.hedge_resolve(
                None,
                primary_ok=True,
                primary_seconds=1.0,
                backup_seconds=1.0,
                overhead_seconds=0.0,
            )
            is None
        )

    def test_fast_primary_never_starts_the_backup(self):
        out = self._resolve(
            primary_ok=True,
            primary_seconds=0.5,
            backup_seconds=9.0,
            overhead_seconds=0.2,
        )
        assert out is None  # finished at 0.7 < delay 1.0

    def test_backup_wins_and_charges_its_full_runtime(self):
        out = self._resolve(
            primary_ok=True,
            primary_seconds=4.0,
            backup_seconds=2.0,
            overhead_seconds=0.0,
        )
        assert out.winner == "backup"
        assert out.completion_s == pytest.approx(3.0)  # delay 1 + backup 2
        assert out.extra_work_s == pytest.approx(2.0)

    def test_primary_wins_and_charges_the_backup_burn(self):
        out = self._resolve(
            primary_ok=True,
            primary_seconds=1.5,
            backup_seconds=9.0,
            overhead_seconds=0.0,
        )
        assert out.winner == "primary"
        assert out.completion_s == pytest.approx(1.5)
        assert out.extra_work_s == pytest.approx(0.5)  # burned from delay

    def test_tie_goes_to_the_primary(self):
        out = self._resolve(
            primary_ok=True,
            primary_seconds=2.0,
            backup_seconds=1.0,
            overhead_seconds=0.0,
        )
        # both finish at 2.0: deterministic primary win
        assert out.winner == "primary"
        assert out.extra_work_s == pytest.approx(1.0)

    def test_failed_primary_backup_duplicates_nothing(self):
        out = self._resolve(
            primary_ok=False,
            primary_seconds=0.0,
            backup_seconds=2.0,
            overhead_seconds=1.5,  # retries burned past the delay
        )
        assert out.winner == "backup"
        assert out.completion_s == pytest.approx(3.0)
        assert out.extra_work_s == 0.0  # the fallback would run it anyway

    def test_failed_primary_before_delay_is_serial_fallback(self):
        out = self._resolve(
            primary_ok=False,
            primary_seconds=0.0,
            backup_seconds=2.0,
            overhead_seconds=0.5,  # died before the backup would start
        )
        assert out is None


class TestHedgePolicy:
    def test_trigger_priorities(self):
        p = HedgePolicy(on_slow=True)
        args = dict(budget=None, predicted_gpu_s=None)
        assert p.trigger(drift_flagged=True, half_open=True, **args) == "drift"
        assert (
            p.trigger(drift_flagged=False, half_open=True, **args) == "half-open"
        )
        assert p.trigger(drift_flagged=False, half_open=False, **args) == "slow"
        calm = HedgePolicy()
        assert calm.trigger(drift_flagged=False, half_open=False, **args) is None

    def test_low_budget_trigger(self):
        p = HedgePolicy(low_budget_factor=2.0)
        poor = Budget(1.0)
        poor.charge(0.9)  # 0.1 left < 2 x 0.08 predicted
        assert (
            p.trigger(
                drift_flagged=False,
                half_open=False,
                budget=poor,
                predicted_gpu_s=0.08,
            )
            == "low-budget"
        )
        assert (
            p.trigger(
                drift_flagged=False,
                half_open=False,
                budget=Budget(1.0),
                predicted_gpu_s=0.08,
            )
            is None
        )

    def test_delay_requires_min_samples(self):
        p = HedgePolicy(min_samples=3)
        assert p.delay("v100", "gemm@n=1") is None
        for s in (1.0, 2.0, 3.0):
            p.observe("v100", "gemm@n=1", s)
        assert p.delay("v100", "gemm@n=1") is not None
        assert p.delay("v100", "gemm@n=2") is None  # never pooled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantile": 0.0},
            {"quantile": 1.5},
            {"min_samples": 0},
            {"low_budget_factor": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)


def _launch_pairs(plain, guarded, n=8):
    for rt in (plain, guarded):
        rt.compile_region(build_gemm())
        rt.compile_region(build_vecadd())
    out = []
    for i in range(n):
        name, env = (
            ("gemm", ENV) if i % 2 == 0 else ("vecadd", {"n": 1 << 20})
        )
        out.append((plain.launch(name, env), guarded.launch(name, env)))
    return out


class TestBitIdentityOff:
    """Features attached-but-idle must not perturb a single record byte."""

    def test_framework_records_identical_with_idle_features(self):
        plain = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        guarded = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        guarded.bulkheads = Bulkhead(10_000)  # never saturates
        guarded.hedge = HedgePolicy()  # default triggers all calm
        for a, b in _launch_pairs(plain, guarded):
            assert a == b
            assert b.hedge is None and b.fallback is None

    def test_framework_identity_survives_faults_and_drift(self):
        kwargs = dict(
            policy=ModelGuided(),
            sentinel=DriftSentinel(),
            watchdog=Watchdog(),
        )
        plain = OffloadingRuntime(
            PLATFORM_P9_V100,
            injector=scenario_by_name("flaky-transfer"),
            **kwargs,
        )
        guarded = OffloadingRuntime(
            PLATFORM_P9_V100,
            injector=scenario_by_name("flaky-transfer"),
            **kwargs,
        )
        guarded.bulkheads = Bulkhead(10_000)
        guarded.hedge = HedgePolicy()
        for a, b in _launch_pairs(plain, guarded):
            assert a == b

    def test_multi_records_identical_with_idle_features(self):
        plain = MultiDeviceRuntime(DUAL)
        guarded = MultiDeviceRuntime(DUAL)
        guarded.bulkheads = Bulkhead(10_000)
        guarded.hedge = HedgePolicy()
        for a, b in _launch_pairs(plain, guarded):
            assert a == b
            assert b.hedge is None

    def test_replay_chaos_identical_with_undersampled_hedge(self):
        # a hedge policy that can never reach min_samples arms nothing:
        # the whole chaotic run serializes to the same bytes as plain
        workload = WorkloadConfig(launches=300, seed=0)
        requests = generate_requests(workload)
        window = ChaosWindow(
            name="fault-storm",
            kind="fault-storm",
            start_s=requests[90].arrival_s,
            stop_s=requests[210].arrival_s,
            probability=0.75,
        )
        chaos = ChaosSchedule(windows=(window,), seed=0)

        def run(hedge: bool):
            cfg = ReplayConfig(
                platform=PLATFORM_P9_V100,
                workload=workload,
                chaos=chaos,
                hedge=hedge,
                hedge_min_samples=10**9,
                bulkhead_slots=10_000 if hedge else None,
            )
            engine = ReplayEngine(cfg, policy=MemoizedPolicy())
            return engine.run(requests=requests)

        a, b = run(False), run(True)
        assert all(r.hedge is None for r in b.records)
        assert json.dumps(score_run(a).to_payload(), sort_keys=True) == (
            json.dumps(score_run(b).to_payload(), sort_keys=True)
        )
        assert [
            (o.index, o.outcome, o.start_s) for o in a.outcomes
        ] == [(o.index, o.outcome, o.start_s) for o in b.outcomes]


class TestBudgetedDispatch:
    def test_backoff_poorer_than_budget_falls_back_typed(self):
        rt = OffloadingRuntime(
            PLATFORM_P9_V100,
            policy=ModelGuided(),
            injector=scenario_by_name("dead-gpu"),
        )
        rt.compile_region(build_gemm())
        # default backoff sleeps 1ms after the first failure: a 0.5ms
        # budget cannot afford it, so the dispatch gives up typed
        rec = rt.launch("gemm", ENV_BIG, budget=Budget(5e-4))
        assert rec.target == "cpu" and rec.requested_target == "gpu"
        assert rec.fallback == FALLBACK_BUDGET
        assert "BudgetExhausted" in [e.error_type for e in rec.fault_events]
        assert rt.health.fault_counts.get("BudgetExhausted", 0) >= 1

    def test_budget_tightens_the_watchdog_deadline(self):
        spec = benchmark_by_name("atax")
        rt = OffloadingRuntime(
            PLATFORM_P9_V100,
            watchdog=Watchdog(factor=1.0, slack_s=0.0),
        )
        for region in spec.build():
            rt.compile_region(region)
        budget = Budget(1e-9)  # poorer than any watchdog deadline
        rec = rt.launch("atax_k2", spec.env("test"), budget=budget)
        assert rec.fallback == FALLBACK_BUDGET
        assert [e.error_type for e in rec.fault_events] == ["BudgetExhausted"]
        # the kill burned exactly the remaining budget, then charged it
        assert rec.overhead_seconds == pytest.approx(1e-9)
        assert budget.exhausted

    def test_generous_budget_is_bit_identical(self):
        plain = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        budgeted = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        for rt in (plain, budgeted):
            rt.compile_region(build_gemm())
        for _ in range(4):
            a = plain.launch("gemm", ENV)
            b = budgeted.launch("gemm", ENV, budget=Budget(1e6))
            assert a == b


class TestBulkheadDispatch:
    def test_saturated_framework_bulkhead_reroutes_to_host(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.bulkheads = Bulkhead(1)
        rt.compile_region(build_gemm())
        rt.bulkheads.book("gpu", finish_s=1e9)  # slot taken far beyond now
        rec = rt.launch("gemm", ENV_BIG)
        assert rec.target == "cpu" and rec.requested_target == "gpu"
        assert rec.fallback == FALLBACK_BULKHEAD
        assert rt.bulkheads.rejections == {"gpu": 1}

    def test_saturated_device_skipped_in_multi_chain(self):
        rt = MultiDeviceRuntime(DUAL)
        rt.bulkheads = Bulkhead(1)
        rt.compile_region(build_gemm())
        first = rt.launch("gemm", ENV_BIG)
        primary = first.chosen
        rt.bulkheads.book(primary, finish_s=1e9)
        rec = rt.launch("gemm", ENV_BIG)
        assert rec.executed_device != primary
        assert rt.bulkheads.rejections.get(primary) == 1


class TestHedgedReplayDeterminism:
    def _hedged_run(self):
        workload = WorkloadConfig(launches=900, seed=0)
        requests = generate_requests(workload)
        window = ChaosWindow(
            name="fault-storm",
            kind="fault-storm",
            start_s=requests[300].arrival_s,
            stop_s=requests[600].arrival_s,
            probability=0.75,
        )
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            chaos=ChaosSchedule(windows=(window,), seed=0),
            hedge=True,
        )
        return ReplayEngine(cfg, policy=MemoizedPolicy()).run(
            requests=requests
        )

    def test_seeded_hedge_races_are_deterministic(self):
        def trace(run):
            return [
                (
                    r.region_name,
                    r.hedge.trigger,
                    r.hedge.winner,
                    r.hedge.delay_s,
                    r.hedge.completion_s,
                    r.hedge.extra_work_s,
                )
                for r in run.records
                if r.hedge is not None
            ]

        a, b = trace(self._hedged_run()), trace(self._hedged_run())
        assert a  # the storm must actually arm some hedges
        assert a == b
        assert json.dumps(
            score_run(self._hedged_run()).to_payload(), sort_keys=True
        ) == json.dumps(
            score_run(self._hedged_run()).to_payload(), sort_keys=True
        )

    def test_hedge_provenance_is_consistent(self):
        run = self._hedged_run()
        for r in run.records:
            h = r.hedge
            if h is None:
                continue
            assert h.winner in ("primary", "backup")
            assert h.delay_s >= 0.0 and h.extra_work_s >= 0.0
            assert math.isfinite(h.completion_s) and h.completion_s > 0.0
            assert r.executed_seconds == pytest.approx(h.completion_s)
