"""Tests for the drift subsystem (repro.drift).

Covers the EWMA/CUSUM math against hand-computed sequences, the
three-state stream verdicts (including streak-based recovery and the
single-fire on_drift hook), watchdog deadlines end to end through the
runtime, the self-healing ladder (corrected / history / hysteresis), the
bit-identity contract of sentinel-on zero-skew runs, and the experiment
grid's detection-latency and recovery-accuracy promises.
"""

import math
from types import SimpleNamespace

import pytest

from repro.drift import (
    Cusum,
    DriftSentinel,
    DriftState,
    Ewma,
    SelfHealingSelector,
    SentinelConfig,
    StreamStats,
    Watchdog,
    attach_refit_hook,
)
from repro.experiments import SkewScenario, run_drift
from repro.faults import DeadlineExceeded
from repro.machines import (
    NVLINK2,
    PCIE3_X16,
    PLATFORM_P9_V100,
    POWER9,
    AcceleratorSlot,
    Platform,
    TESLA_K80,
    TESLA_V100,
)
from repro.polybench import benchmark_by_name
from repro.runtime import (
    ModelGuided,
    MultiDeviceRuntime,
    OffloadingRuntime,
)

from .kernels import build_gemm

ENV = {"ni": 512, "nj": 512, "nk": 512}
ENV_BIG = {"ni": 9600, "nj": 9600, "nk": 9600}


def _prediction(cpu_s: float, gpu_s: float):
    return SimpleNamespace(
        cpu=SimpleNamespace(seconds=cpu_s),
        gpu=SimpleNamespace(seconds=gpu_s),
        winner="gpu" if gpu_s < cpu_s else "cpu",
    )


class TestEwma:
    def test_first_sample_seeds_value(self):
        e = Ewma(alpha=0.5)
        assert e.update(2.0) == 2.0
        assert e.update(4.0) == 3.0  # 2 + 0.5 * (4 - 2)
        assert e.update(3.0) == 3.0
        assert e.count == 3


class TestCusum:
    def test_hand_computed_positive_ramp(self):
        c = Cusum(k=0.5, h=2.0)
        for expected in (0.5, 1.0, 1.5, 2.0):
            c.update(1.0)
            assert c.pos == pytest.approx(expected)
        assert not c.tripped  # strictly-greater threshold
        assert c.update(1.0)  # 2.5 > 2.0
        assert c.statistic == pytest.approx(2.5)

    def test_negative_side_and_slack_decay(self):
        c = Cusum(k=0.5, h=2.0)
        c.update(-3.0)
        assert c.neg == pytest.approx(2.5) and c.pos == 0.0
        assert c.tripped
        c.update(0.0)  # slack sheds k per observation
        assert c.neg == pytest.approx(2.0)
        c.reset()
        assert c.statistic == 0.0 and not c.tripped


class TestSentinelConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"warmup": 0},
            {"cusum_k": -0.1},
            {"cusum_h": 0.0},
            {"suspect_fraction": 1.0},
            {"recover_band": 0.0},
            {"recover_after": 0},
            {"correction_clamp": 0.5},
            {"measured_alpha": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SentinelConfig(**kwargs)


class TestStreamStats:
    def _warm(self, stream: StreamStats, ratio: float = 1.0, n: int = 3):
        for _ in range(n):
            stream.observe(1.0, ratio)

    def test_static_bias_absorbed_by_baseline(self):
        # a constant 2x model error is the *accepted* static error: the
        # warmup baseline captures it and the stream never leaves CALIBRATED
        s = StreamStats("gpu", "r", SentinelConfig())
        for _ in range(50):
            assert s.observe(1.0, 2.0) is DriftState.CALIBRATED
        assert s.correction() == 1.0
        assert s.baseline == pytest.approx(math.log(2.0))

    def test_level_shift_reaches_drifted(self):
        s = StreamStats("gpu", "r", SentinelConfig())
        self._warm(s)
        # a 6x shift is log(6) ~ 1.79 > h = 0.6: one observation trips
        assert s.observe(1.0, 6.0) is DriftState.DRIFTED
        assert s.drift_count == 1
        # the correction undoes the shift relative to the baseline
        assert s.correction() == pytest.approx(6.0)

    def test_suspect_between_noise_floor_and_threshold(self):
        s = StreamStats("gpu", "r", SentinelConfig())
        self._warm(s)
        # residual 0.4 - k 0.05 = 0.35: above h/2 = 0.3, below h = 0.6
        assert s.observe(1.0, math.exp(0.4)) is DriftState.SUSPECT
        assert s.correction() == 1.0  # SUSPECT does not correct yet

    def test_streak_based_recovery_resets_cusum(self):
        cfg = SentinelConfig()
        s = StreamStats("gpu", "r", cfg)
        self._warm(s)
        s.observe(1.0, 6.0)
        assert s.state is DriftState.DRIFTED
        # recover_after consecutive in-band residuals re-promote the stream
        for _ in range(cfg.recover_after - 1):
            assert s.observe(1.0, 1.0) is DriftState.DRIFTED
        assert s.observe(1.0, 1.0) is DriftState.CALIBRATED
        assert s.cusum.statistic == 0.0
        assert s.correction() == 1.0

    def test_recovery_streak_broken_by_outlier(self):
        cfg = SentinelConfig()
        s = StreamStats("gpu", "r", cfg)
        self._warm(s)
        s.observe(1.0, 6.0)
        for _ in range(cfg.recover_after - 1):
            s.observe(1.0, 1.0)
        s.observe(1.0, 6.0)  # outlier restarts the streak
        for _ in range(cfg.recover_after - 1):
            assert s.observe(1.0, 1.0) is DriftState.DRIFTED

    def test_invalid_pairs_ignored(self):
        s = StreamStats("gpu", "r", SentinelConfig())
        for predicted, observed in [
            (math.nan, 1.0),
            (1.0, math.inf),
            (0.0, 1.0),
            (1.0, -1.0),
        ]:
            assert s.observe(predicted, observed) is DriftState.CALIBRATED
        assert s.observations == 0

    def test_correction_clamped(self):
        cfg = SentinelConfig()
        s = StreamStats("gpu", "r", cfg)
        self._warm(s)
        s.observe(1.0, 1e6)
        assert s.state is DriftState.DRIFTED
        assert s.correction() == cfg.correction_clamp


class TestDriftSentinel:
    def test_on_drift_fires_once_per_edge(self):
        fired = []
        sentinel = DriftSentinel(on_drift=fired.append)
        for _ in range(3):
            sentinel.observe("gpu", "r", 1.0, 1.0)
        sentinel.observe("gpu", "r", 1.0, 6.0)
        sentinel.observe("gpu", "r", 1.0, 6.0)  # still DRIFTED: no re-fire
        assert len(fired) == 1
        assert fired[0].device == "gpu" and fired[0].region == "r"
        assert sentinel.any_drifted()
        assert [s.region for s in sentinel.drifted_streams()] == ["r"]

    def test_unknown_stream_defaults(self):
        sentinel = DriftSentinel()
        assert sentinel.state("gpu", "nope") is DriftState.CALIBRATED
        assert sentinel.correction("gpu", "nope") == 1.0
        assert sentinel.measured("gpu", "nope") is None
        assert sentinel.instability("gpu", "nope") == 0.0

    def test_fitted_scales_geometric_mean(self):
        sentinel = DriftSentinel()
        sentinel.observe("gpu", "a", 1.0, 2.0)
        sentinel.observe("gpu", "b", 1.0, 8.0)
        assert sentinel.fitted_scales()["gpu"] == pytest.approx(4.0)


class TestWatchdog:
    def test_deadline_formula(self):
        wd = Watchdog(factor=4.0, slack_s=0.5)
        assert wd.deadline(2.0) == pytest.approx(8.5)
        assert wd.exceeded(2.0, 8.6)
        assert not wd.exceeded(2.0, 8.5)  # at the deadline is not over it

    def test_unusable_prediction_disables_deadline(self):
        wd = Watchdog()
        assert wd.deadline(math.nan) == math.inf
        assert wd.deadline(0.0) == math.inf
        assert not wd.exceeded(math.nan, 1e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"factor": 0.5},
            {"factor": math.inf},
            {"slack_s": -1.0},
            {"slack_s": math.nan},
        ],
    )
    def test_invalid_watchdog_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Watchdog(**kwargs)


class TestSelfHealing:
    def _drifted_gpu_sentinel(self, observed: float = 3.0) -> DriftSentinel:
        sentinel = DriftSentinel()
        for _ in range(3):
            sentinel.observe("gpu", "r", 1.0, 1.0)
        sentinel.observe("gpu", "r", 1.0, observed)
        assert sentinel.state("gpu", "r") is DriftState.DRIFTED
        return sentinel

    def test_none_while_fully_calibrated(self):
        healer = SelfHealingSelector(DriftSentinel())
        assert healer.decide("r", _prediction(2.0, 1.0)) is None

    def test_corrected_mode_overrides_model(self):
        healer = SelfHealingSelector(self._drifted_gpu_sentinel())
        # model says gpu (1.0 < 2.0); corrected gpu cost is 3.0 -> cpu
        decision = healer.decide("r", _prediction(2.0, 1.0))
        assert decision.mode == "corrected"
        assert decision.correction_gpu == pytest.approx(3.0)
        assert decision.model_target == "gpu" and decision.target == "cpu"
        assert decision.overrode

    def test_hysteresis_holds_inside_dead_band(self):
        healer = SelfHealingSelector(self._drifted_gpu_sentinel())
        first = healer.decide("r", _prediction(3.05, 1.0))
        assert first.target == "gpu" and not first.held  # 3.0 < 3.05
        # corrected gpu (3.0) is now nominally slower than cpu (2.97),
        # but within the 5% dead-band: the previous pick is held
        held = healer.decide("r", _prediction(2.97, 1.0))
        assert held.target == "gpu" and held.held
        # far outside the band the decision flips decisively
        flipped = healer.decide("r", _prediction(2.0, 1.0))
        assert flipped.target == "cpu" and not flipped.held

    def test_history_mode_on_unstable_stream(self):
        sentinel = self._drifted_gpu_sentinel(observed=8.0)
        # whipsawing observations: no scalar correction fits
        sentinel.observe("gpu", "r", 1.0, 0.125)
        assert sentinel.instability("gpu", "r") > 0.35
        sentinel.observe("cpu", "r", 5.0, 5.0)  # cpu measured history
        healer = SelfHealingSelector(sentinel)
        decision = healer.decide("r", _prediction(5.0, 1.0))
        assert decision.mode == "history"
        # measured gpu ewma (~2.3s) beats measured cpu (5.0s)
        assert decision.target == "gpu"

    def test_suspect_only_keeps_model_pick(self):
        sentinel = DriftSentinel()
        for _ in range(3):
            sentinel.observe("gpu", "r", 1.0, 1.0)
        sentinel.observe("gpu", "r", 1.0, math.exp(0.4))
        assert sentinel.state("gpu", "r") is DriftState.SUSPECT
        decision = SelfHealingSelector(sentinel).decide(
            "r", _prediction(2.0, 1.0)
        )
        assert decision.mode == "model"
        assert decision.target == decision.model_target == "gpu"


class TestRefitHook:
    def test_drift_edge_refits_policy_calibration(self):
        policy = ModelGuided()
        sentinel = DriftSentinel()
        attach_refit_hook(sentinel, policy, PLATFORM_P9_V100)
        for _ in range(3):
            sentinel.observe("gpu", "r", 1.0, 1.0)
        sentinel.observe("gpu", "r", 1.0, 6.0)
        key = (PLATFORM_P9_V100.name, None)
        assert key in policy._calibrations
        from repro.calibrate import fit_model_calibration

        base = fit_model_calibration(PLATFORM_P9_V100)
        refit = policy._calibrations[key]
        # the gpu side is scaled by the observed/predicted ratio (EWMA
        # after the 6x shift), the untouched cpu side is preserved
        assert refit.gpu_time_scale == pytest.approx(
            base.gpu_time_scale * 6.0
        )
        assert refit.cpu_time_scale == base.cpu_time_scale


class TestRuntimeIntegration:
    def test_zero_skew_records_bit_identical(self):
        plain = OffloadingRuntime(PLATFORM_P9_V100)
        guarded = OffloadingRuntime(
            PLATFORM_P9_V100, sentinel=DriftSentinel(), watchdog=Watchdog()
        )
        for rt in (plain, guarded):
            rt.compile_region(build_gemm())
        for _ in range(6):  # spans warmup and post-warmup launches
            a = plain.launch("gemm", ENV)
            b = guarded.launch("gemm", ENV)
            assert a == b
            assert b.drift is None
        assert not guarded.sentinel.any_drifted()

    def test_watchdog_overrun_reroutes_and_feeds_health(self):
        spec = benchmark_by_name("atax")
        rt = OffloadingRuntime(
            PLATFORM_P9_V100,
            sentinel=DriftSentinel(),
            watchdog=Watchdog(factor=1.0, slack_s=0.0),
        )
        for region in spec.build():
            rt.compile_region(region)
        rec = rt.launch("atax_k2", spec.env("test"))
        assert rec.target == "cpu" and rec.requested_target == "gpu"
        assert rec.fallback == "deadline-exceeded"
        assert [e.error_type for e in rec.fault_events] == ["DeadlineExceeded"]
        # the deadline's worth of device time was burned before the kill
        assert rec.overhead_seconds > 0.0
        assert rt.health.fault_counts.get("DeadlineExceeded") == 1
        assert rt.clock.now == pytest.approx(rec.overhead_seconds)

    def test_prediction_scaled_identity_and_copy(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100)
        rt.compile_region(build_gemm())
        pred = rt.launch("gemm", ENV).prediction
        # the no-op scale returns the same object (identity comparability)
        assert pred.scaled() is pred
        doubled = pred.scaled(gpu_scale=2.0)
        assert doubled.gpu.seconds == pytest.approx(pred.gpu.seconds * 2)
        assert doubled.cpu.seconds == pred.cpu.seconds
        assert doubled is not pred

    def test_deadline_exceeded_error_shape(self):
        err = DeadlineExceeded(
            "too slow",
            device_name="gpu0",
            launch_index=3,
            attempt=1,
            deadline_seconds=1.0,
            observed_seconds=2.0,
        )
        assert not err.retryable
        assert err.deadline_seconds == 1.0 and err.observed_seconds == 2.0


DUAL = Platform(
    "P9 + V100/NVLink + K80/PCIe",
    POWER9,
    (
        AcceleratorSlot(TESLA_V100, NVLINK2),
        AcceleratorSlot(TESLA_K80, PCIE3_X16),
    ),
)


class TestMultiDeviceDrift:
    def test_zero_skew_records_bit_identical(self):
        plain = MultiDeviceRuntime(DUAL)
        guarded = MultiDeviceRuntime(
            DUAL, sentinel=DriftSentinel(), watchdog=Watchdog()
        )
        for rt in (plain, guarded):
            rt.compile_region(build_gemm())
        for _ in range(5):
            a = plain.launch("gemm", ENV)
            b = guarded.launch("gemm", ENV)
            assert a == b
            assert b.drift is None

    def test_drifted_device_penalized_in_selection(self):
        rt = MultiDeviceRuntime(DUAL, sentinel=DriftSentinel())
        rt.compile_region(build_gemm())
        baseline = rt.launch("gemm", ENV_BIG)
        v100 = next(o.device_name for o in baseline.outcomes if "V100" in o.device_name)
        assert baseline.chosen == v100  # the fast card wins when healthy
        # poison the V100 stream: observed seconds 64x its predictions
        for _ in range(3):
            rt.sentinel.observe(v100, "gemm", 1.0, 1.0)
        rt.sentinel.observe(v100, "gemm", 1.0, 100.0)
        assert rt.sentinel.state(v100, "gemm") is DriftState.DRIFTED
        rec = rt.launch("gemm", ENV_BIG)
        assert rec.chosen != v100  # the 64x-clamped correction reroutes
        assert rec.drift is not None
        assert (v100, "drifted") in rec.drift


class TestDriftExperiment:
    def test_detection_and_recovery_promises(self):
        result = run_drift(
            launches=42,
            start=18,
            scenarios=(
                SkewScenario("zero-skew"),
                SkewScenario("gpu-optimist", gpu_scale=1 / 6, start=18),
            ),
        )
        control = result.get("zero-skew")
        assert control.bit_identical is True
        assert control.detection_launch is None

        skewed = result.get("gpu-optimist")
        assert skewed.bit_identical is None
        assert skewed.detection_latency is not None
        assert skewed.detection_latency <= 8
        assert skewed.skewed_accuracy < skewed.baseline_accuracy
        assert skewed.recovery_gap <= 0.05
        assert result.passed

    def test_skew_inside_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            run_drift(launches=42, start=6)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            SkewScenario("bad", gpu_scale=0.0)
        with pytest.raises(ValueError):
            SkewScenario("bad", start=10, stop=10)
