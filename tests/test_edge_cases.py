"""Edge-case tests across packages (else-branches, degenerate shapes)."""

import numpy as np
import pytest

from repro.ir import (
    Region,
    cmp,
    parse_region,
    region_to_text,
    validate_region,
)
from repro.machines import POWER9, TESLA_V100
from repro.sim import allocate_arrays, execute_region, simulate_cpu, simulate_gpu_kernel


def build_if_else() -> Region:
    r = Region("clip")
    n = r.param("n")
    A = r.array("A", (n,), inout=True)
    with r.parallel_loop("i", n) as i:
        with r.if_(cmp("gt", A[i], 0.5)):
            r.store(A[i], 1.0)
    # graft an else branch (the builder exposes only then; the IR allows both)
    if_stmt = r.body[0].body[0]
    from repro.ir import Store

    if_stmt.else_body.append(Store(A, if_stmt.then_body[0].idxs, if_stmt.then_body[0].value * 0.0))
    return r


class TestIfElse:
    def test_printer_renders_else(self):
        text = region_to_text(build_if_else())
        assert "} else {" in text

    def test_parser_roundtrips_else(self):
        region = build_if_else()
        text = region_to_text(region)
        parsed = parse_region(text)
        validate_region(parsed)
        assert region_to_text(parsed) == text

    def test_executor_takes_else(self):
        region = build_if_else()
        arrays = {"A": np.array([0.9, 0.1], dtype=np.float32)}
        execute_region(region, arrays, {}, {"n": 2})
        assert arrays["A"][0] == 1.0
        assert arrays["A"][1] == 0.0

    def test_simulators_accept_if_else(self):
        region = build_if_else()
        assert simulate_cpu(region, POWER9, {"n": 10_000}).seconds > 0
        assert simulate_gpu_kernel(region, TESLA_V100, {"n": 10_000}).seconds > 0


class TestDegenerateShapes:
    def test_one_iteration_band(self):
        r = Region("one")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", 1) as i:
            acc = r.local("acc", 0.0)
            with r.loop("j", n) as j:
                r.assign(acc, acc + A[j])
            r.store(A[i], acc)
        validate_region(r)
        cpu = simulate_cpu(r, POWER9, {"n": 1000})
        gpu = simulate_gpu_kernel(r, TESLA_V100, {"n": 1000})
        assert cpu.seconds > 0 and gpu.seconds > 0
        # one work item: one warp, one SM
        assert gpu.plan.total_threads >= 1
        assert gpu.plan.active_sms == 1

    def test_zero_trip_inner_loop(self):
        r = Region("zero")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            acc = r.local("acc", A[i])
            with r.loop("j", 0) as j:
                r.assign(acc, acc + A[j])
            r.store(A[i], acc)
        validate_region(r)
        arrays = allocate_arrays(r, {"n": 4}, seed=0)
        before = arrays["A"].copy()
        execute_region(r, arrays, {}, {"n": 4})
        np.testing.assert_array_equal(arrays["A"], before)
        assert simulate_cpu(r, POWER9, {"n": 64}).seconds > 0

    def test_scalar_only_body(self):
        r = Region("scalar_body")
        n = r.param("n")
        out = r.array("out", (n,), output=True)
        c = r.scalar("c")
        with r.parallel_loop("i", n) as i:
            r.store(out[i], c * 2.0 + 1.0)
        arrays = allocate_arrays(r, {"n": 3})
        execute_region(r, arrays, {"c": 4.0}, {"n": 3})
        np.testing.assert_allclose(arrays["out"], 9.0)

    def test_rank3_array_round_trip(self):
        r = Region("rank3")
        n = r.param("n")
        A = r.array("A", (n, n, n))
        B = r.array("B", (n, n, n), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", n) as j:
                with r.loop("k", n) as k:
                    r.store(B[i, j, k], A[i, j, k] * 2.0)
        parsed = parse_region(region_to_text(r))
        assert region_to_text(parsed) == region_to_text(r)
        arrays = allocate_arrays(r, {"n": 3}, seed=8)
        execute_region(r, arrays, {}, {"n": 3})
        np.testing.assert_allclose(arrays["B"], arrays["A"] * 2.0, rtol=1e-6)
