"""Tests for the extension features: multi-accelerator + split execution."""

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.calibrate import fit_model_calibration
from repro.machines import (
    AcceleratorSlot,
    NVLINK2,
    PCIE3_X16,
    PLATFORM_P9_V100,
    POWER9,
    Platform,
    TESLA_K80,
    TESLA_V100,
)
from repro.models import predict_split
from repro.runtime import MultiDeviceRuntime

from .kernels import build_gemm, build_vecadd


def build_gemm_c2():
    """The Polybench collapse(2) GEMM — the GPU-friendly variant."""
    from repro.polybench import benchmark_by_name

    (region,) = benchmark_by_name("gemm").build()
    return region

DUAL = Platform(
    "P9+V100+K80",
    POWER9,
    (
        AcceleratorSlot(TESLA_V100, NVLINK2),
        AcceleratorSlot(TESLA_K80, PCIE3_X16),
    ),
)


class TestMultiDeviceRuntime:
    def test_requires_an_accelerator(self):
        with pytest.raises(ValueError):
            MultiDeviceRuntime(Platform("bare", POWER9))

    def test_three_candidates(self):
        rt = MultiDeviceRuntime(DUAL)
        rt.compile_region(build_gemm())
        rec = rt.launch("gemm", {"ni": 1024, "nj": 1024, "nk": 1024})
        assert len(rec.outcomes) == 3  # host + two accelerators
        kinds = [o.kind for o in rec.outcomes]
        assert kinds.count("cpu") == 1 and kinds.count("gpu") == 2

    def test_chooses_minimum_prediction(self):
        rt = MultiDeviceRuntime(DUAL)
        rt.compile_region(build_gemm())
        rec = rt.launch("gemm", {"ni": 2048, "nj": 2048, "nk": 2048})
        best_pred = min(rec.outcomes, key=lambda o: o.predicted_seconds)
        assert rec.chosen == best_pred.device_name

    def test_picks_the_better_gpu_for_big_matmul(self):
        rt = MultiDeviceRuntime(DUAL)
        rt.compile_region(build_gemm_c2())
        rec = rt.launch("gemm", {"ni": 4096, "nj": 4096, "nk": 4096})
        # the V100 over NVLink dominates the K80 over PCIe for GEMM
        assert "V100" in rec.chosen
        assert rec.decision_correct

    def test_oracle_and_executed(self):
        rt = MultiDeviceRuntime(DUAL)
        rt.compile_region(build_vecadd())
        rec = rt.launch("vecadd", {"n": 1 << 22})
        measured = {o.device_name: o.measured_seconds for o in rec.outcomes}
        assert rec.oracle_name == min(measured, key=measured.get)
        assert rec.executed_seconds == measured[rec.chosen]


class TestSplitExecution:
    def _bound(self, region, env):
        db = ProgramAttributeDatabase()
        return db.compile_region(region).bind(env)

    def test_endpoints_match_pure_predictions(self):
        bound = self._bound(build_gemm(), {"ni": 2048, "nj": 2048, "nk": 2048})
        split = predict_split(bound, PLATFORM_P9_V100)
        assert split.curve[0][0] == 0.0 and split.curve[-1][0] == 1.0
        assert split.cpu_only_seconds == split.curve[0][1]
        assert split.gpu_only_seconds == split.curve[-1][1]

    def test_makespan_never_worse_than_best_single(self):
        bound = self._bound(build_gemm(), {"ni": 2048, "nj": 2048, "nk": 2048})
        split = predict_split(bound, PLATFORM_P9_V100)
        assert split.makespan_seconds <= min(
            split.cpu_only_seconds, split.gpu_only_seconds
        ) + 1e-12
        assert 0.0 <= split.gpu_fraction <= 1.0

    def test_split_helps_when_devices_comparable(self):
        # collapse(2) GEMM: both devices contribute -> cooperative win
        bound = self._bound(
            build_gemm_c2(), {"ni": 4096, "nj": 4096, "nk": 4096}
        )
        cal = fit_model_calibration(PLATFORM_P9_V100)
        split = predict_split(bound, PLATFORM_P9_V100, calibration=cal)
        assert 0.0 < split.gpu_fraction < 1.0
        assert split.speedup_over_best_single > 1.0

    def test_transfer_dominated_kernel_avoids_split_overhead(self):
        # vecadd at benchmark size: the GPU side is all transfer; the
        # optimum should sit at (or extremely near) one endpoint
        bound = self._bound(build_vecadd(), {"n": 1 << 24})
        cal = fit_model_calibration(PLATFORM_P9_V100)
        split = predict_split(bound, PLATFORM_P9_V100, calibration=cal)
        assert split.speedup_over_best_single < 2.0

    def test_sample_validation(self):
        bound = self._bound(build_vecadd(), {"n": 4096})
        with pytest.raises(ValueError):
            predict_split(bound, PLATFORM_P9_V100, samples=2)

    def test_curve_is_well_formed(self):
        bound = self._bound(build_vecadd(), {"n": 1 << 20})
        split = predict_split(bound, PLATFORM_P9_V100, samples=16)
        assert len(split.curve) == 16
        fractions = [f for f, _ in split.curve]
        assert fractions == sorted(fractions)
        assert all(t >= 0 for _, t in split.curve)
