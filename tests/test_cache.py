"""Tests for the persistent, content-addressed analysis cache.

Three properties matter, in this order:

1. **Transparency** — a cached sweep (cold or warm) is byte-identical to
   an uncached one; ``clear_caches()`` between sweeps changes nothing.
2. **Key injectivity** — any perturbation of the kernel IR, the analysis
   parameters or the machine model changes the key, while reformatting
   (a printer→parser round-trip) does not.  The canonical form is
   ``region_to_text``, so the printer-fixpoint tests in
   ``test_ir_parser.py`` are load-bearing for this file.
3. **Corruption safety** — truncated, garbage or mismatched entries are
   invalidations (recompute + overwrite), never wrong answers.
"""

import dataclasses
import json
import os
from types import MappingProxyType

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import clear_caches, measure_suite, predict_suite
from repro.ir import parse_region, region_to_text
from repro.machines import POWER9
from repro.mca import steady_state_cycles
from repro.mca.ops import MachineOp
from repro.obs import MetricsRegistry
from repro.parallel import (
    AnalysisCache,
    NULL_CACHE,
    compute_key,
    current_cache,
    machine_fingerprint,
    region_cache_key,
)

from .kernels import build_gemm, build_vecadd
from .test_parallel import canon_measurements, canon_predictions
from .test_property_regions import regions


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_caches()
    yield
    clear_caches()


def run_sweep():
    return canon_measurements(
        measure_suite("p9-v100", "test")
    ) + canon_predictions(predict_suite("p9-v100", "test"))


# ---------------------------------------------------------------------------
# Transparency: cached sweeps are byte-identical to uncached ones
# ---------------------------------------------------------------------------


class TestTransparency:
    def test_cold_and_warm_sweeps_bitwise_identical(self, tmp_path):
        baseline = run_sweep()

        clear_caches()
        cold_cache = AnalysisCache(str(tmp_path))
        with cold_cache.activate():
            cold = run_sweep()
        assert cold == baseline
        assert cold_cache.misses > 0 and cold_cache.writes > 0

        clear_caches(persistent=False)  # keep the disk entries
        warm_cache = AnalysisCache(str(tmp_path))
        with warm_cache.activate():
            warm = run_sweep()
        assert warm == baseline
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0

    def test_default_cache_is_disabled(self):
        assert current_cache() is NULL_CACHE
        assert not current_cache().enabled

    def test_activation_nests_and_restores(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        with cache.activate():
            assert current_cache() is cache
        assert current_cache() is NULL_CACHE

    def test_clear_caches_also_clears_persistent_entries(self, tmp_path):
        """Satellite: two ``clear_caches()``-separated sweeps stay
        bit-identical, and the second genuinely recomputes."""
        cache = AnalysisCache(str(tmp_path))
        with cache.activate():
            first = run_sweep()
            assert cache.entry_count() > 0
            clear_caches()
            assert cache.entry_count() == 0
            second = run_sweep()
            assert cache.misses > 0  # recomputed, not replayed
        assert first == second

    def test_clear_caches_can_keep_persistent_entries(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        with cache.activate():
            run_sweep()
            entries = cache.entry_count()
            assert entries > 0
            clear_caches(persistent=False)
            assert cache.entry_count() == entries

    def test_metrics_mirroring(self, tmp_path):
        registry = MetricsRegistry()
        cache = AnalysisCache(str(tmp_path), metrics=registry)
        cache.get_or_compute("k", "p", None, lambda: 1)
        cache.get_or_compute("k", "p", None, lambda: 1)
        counters = registry.snapshot()["counters"]
        assert counters["analysis_cache_total{kind=k,outcome=miss}"] == 1
        assert counters["analysis_cache_total{kind=k,outcome=hit}"] == 1


# ---------------------------------------------------------------------------
# Key properties
# ---------------------------------------------------------------------------


class TestKeyStability:
    @settings(max_examples=25, deadline=None)
    @given(regions())
    def test_printer_parser_roundtrip_preserves_key(self, region):
        rt = parse_region(region_to_text(region))
        assert region_cache_key(rt) == region_cache_key(region)
        assert region_cache_key(rt, POWER9) == region_cache_key(
            region, POWER9
        )

    def test_key_is_stable_across_processes_by_construction(self):
        # pure function of content: same inputs, same key, every call
        a = compute_key("kind", {"x": 1, "y": [2, 3]}, POWER9)
        b = compute_key("kind", {"y": [2, 3], "x": 1}, POWER9)
        assert a == b

    def test_tuple_and_list_payloads_canonicalize_together(self):
        assert compute_key("k", (1, 2, 3)) == compute_key("k", [1, 2, 3])


class TestKeyInjectivity:
    def test_different_kernels_different_keys(self):
        assert region_cache_key(build_gemm()) != region_cache_key(
            build_vecadd()
        )

    def test_node_mutation_changes_key(self):
        base = build_gemm()
        text = region_to_text(base)
        mutated_text = text.replace("[nk]", "[nz]")
        assert mutated_text != text
        mutated = parse_region(mutated_text)
        assert region_cache_key(mutated) != region_cache_key(base)

    def test_kind_is_part_of_the_key(self):
        assert compute_key("ipda.analyze", "x") != compute_key(
            "mca.steady_state", "x"
        )

    @settings(max_examples=30, deadline=None)
    @given(
        field=st.sampled_from(
            [
                "cores",
                "smt",
                "frequency_ghz",
                "dispatch_width",
                "l1_latency",
                "dram_latency",
                "vector_width_bits",
            ]
        ),
        delta=st.integers(min_value=1, max_value=64),
    )
    def test_machine_perturbation_changes_fingerprint(self, field, delta):
        perturbed = dataclasses.replace(
            POWER9, **{field: getattr(POWER9, field) + delta}
        )
        assert machine_fingerprint(perturbed) != machine_fingerprint(POWER9)
        assert compute_key("k", "p", perturbed) != compute_key(
            "k", "p", POWER9
        )

    def test_port_count_perturbation_changes_fingerprint(self):
        ports = dict(POWER9.ports)
        ports["LS"] += 1
        perturbed = dataclasses.replace(
            POWER9, ports=MappingProxyType(ports)
        )
        assert machine_fingerprint(perturbed) != machine_fingerprint(POWER9)

    @settings(max_examples=20, deadline=None)
    @given(
        warmup=st.integers(min_value=1, max_value=8),
        measure=st.integers(min_value=1, max_value=32),
    )
    def test_schedule_parameters_are_part_of_the_key(self, warmup, measure):
        payload = {"warmup": warmup, "measure": measure}
        base = {"warmup": 4, "measure": 16}
        keys_equal = compute_key("mca", payload) == compute_key("mca", base)
        assert keys_equal == (payload == base)


# ---------------------------------------------------------------------------
# Corruption: a damaged entry is a miss, never a wrong answer
# ---------------------------------------------------------------------------


def _entry_files(cache_dir):
    out = []
    for root, _, names in os.walk(cache_dir):
        out.extend(
            os.path.join(root, n) for n in names if n.endswith(".json")
        )
    return sorted(out)


class TestCorruption:
    def _populate(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        value = cache.get_or_compute("k", {"p": 1}, None, lambda: [1, 2, 3])
        assert value == [1, 2, 3]
        (path,) = _entry_files(tmp_path)
        return path

    def _reread(self, tmp_path):
        # a *fresh* instance, so the in-memory layer cannot mask the disk
        cache = AnalysisCache(str(tmp_path))
        value = cache.get_or_compute("k", {"p": 1}, None, lambda: [1, 2, 3])
        return cache, value

    def test_truncated_entry_is_invalidated(self, tmp_path):
        path = self._populate(tmp_path)
        raw = open(path).read()
        open(path, "w").write(raw[: len(raw) // 2])
        cache, value = self._reread(tmp_path)
        assert value == [1, 2, 3]
        assert cache.invalidations == 1 and cache.misses == 1

    def test_garbage_entry_is_invalidated(self, tmp_path):
        path = self._populate(tmp_path)
        open(path, "wb").write(b"\x00\xff not json \xfe")
        cache, value = self._reread(tmp_path)
        assert value == [1, 2, 3]
        assert cache.invalidations == 1

    def test_schema_mismatch_is_invalidated(self, tmp_path):
        path = self._populate(tmp_path)
        entry = json.loads(open(path).read())
        entry["schema"] = 999
        open(path, "w").write(json.dumps(entry))
        cache, value = self._reread(tmp_path)
        assert value == [1, 2, 3]
        assert cache.invalidations == 1

    def test_version_mismatch_is_invalidated(self, tmp_path):
        path = self._populate(tmp_path)
        entry = json.loads(open(path).read())
        entry["version"] = "0.0.0"
        open(path, "w").write(json.dumps(entry))
        cache, value = self._reread(tmp_path)
        assert value == [1, 2, 3]
        assert cache.invalidations == 1

    def test_key_mismatch_is_invalidated(self, tmp_path):
        # an entry copied under the wrong address must not be served
        path = self._populate(tmp_path)
        entry = json.loads(open(path).read())
        entry["key"] = "0" * 64
        open(path, "w").write(json.dumps(entry))
        cache, value = self._reread(tmp_path)
        assert value == [1, 2, 3]
        assert cache.invalidations == 1

    def test_validator_rejection_is_invalidated(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        cache.get_or_compute("k", "p", None, lambda: "wrong-shape")
        fresh = AnalysisCache(str(tmp_path))
        value = fresh.get_or_compute(
            "k",
            "p",
            None,
            lambda: 42,
            validate=lambda v: isinstance(v, int),
        )
        assert value == 42
        assert fresh.invalidations == 1
        # the overwrite sticks: next read hits with the valid value
        again = AnalysisCache(str(tmp_path))
        assert (
            again.get_or_compute(
                "k", "p", None, lambda: 0,
                validate=lambda v: isinstance(v, int),
            )
            == 42
        )
        assert again.hits == 1

    def test_corrupt_entry_is_overwritten(self, tmp_path):
        path = self._populate(tmp_path)
        open(path, "w").write("garbage")
        self._reread(tmp_path)
        entry = json.loads(open(path).read())
        assert entry["value"] == [1, 2, 3]

    def test_steady_state_survives_corrupt_cache(self, tmp_path):
        body = [
            MachineOp("load", 0, (), "load A[i]"),
            MachineOp("fma", 1, (0, 1), "acc"),
        ]
        baseline = steady_state_cycles(body, POWER9)
        cache = AnalysisCache(str(tmp_path))
        with cache.activate():
            assert steady_state_cycles(body, POWER9) == baseline
        for path in _entry_files(tmp_path):
            open(path, "w").write("}{ torn write")
        fresh = AnalysisCache(str(tmp_path))
        with fresh.activate():
            assert steady_state_cycles(body, POWER9) == baseline
        assert fresh.invalidations >= 1
