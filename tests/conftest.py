"""Shared pytest configuration for the repro test suite."""

import pytest

from repro.parallel import shutdown_pools


@pytest.fixture(autouse=True, scope="session")
def _shutdown_worker_pools():
    """Tear down persistent warm-worker pools when the session ends.

    Pools outlive individual sweeps by design; an orderly shutdown lets
    worker processes flush coverage data and keeps the atexit path from
    racing interpreter teardown under pytest-cov.
    """
    yield
    shutdown_pools()


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden snapshot files under tests/golden/ "
        "from the current run instead of asserting against them",
    )
