"""Shared pytest configuration for the repro test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden snapshot files under tests/golden/ "
        "from the current run instead of asserting against them",
    )
