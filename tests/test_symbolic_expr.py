"""Unit tests for the symbolic expression engine."""

import pytest

from repro.symbolic import (
    Add,
    Const,
    EvalError,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Sym,
    as_expr,
)


class TestConstruction:
    def test_const_folding_add(self):
        assert Const(2) + 3 == Const(5)

    def test_const_folding_mul(self):
        assert Const(4) * Const(5) == Const(20)

    def test_sym_plus_zero_is_sym(self):
        n = Sym("n")
        assert n + 0 == n

    def test_sym_times_one_is_sym(self):
        n = Sym("n")
        assert n * 1 == n

    def test_sym_times_zero_is_zero(self):
        assert Sym("n") * 0 == Const(0)

    def test_like_term_collection(self):
        n = Sym("n")
        assert n + n == Const(2) * n

    def test_subtraction_cancels(self):
        n = Sym("n")
        assert n - n == Const(0)

    def test_paper_ipda_example(self):
        # IPD_th(A[max*a]) = [max]*1 - [max]*0 = [max]  (Section IV.C)
        mx = Sym("max")
        diff = mx * 1 - mx * 0
        assert diff == mx

    def test_nested_add_flattens(self):
        a, b, c = Sym("a"), Sym("b"), Sym("c")
        e = (a + b) + c
        assert isinstance(e, Add)
        assert len(e.terms) == 3

    def test_mul_distributes_over_add(self):
        n, i = Sym("n"), Sym("i")
        e = n * (i + 1)
        # must decompose as n*i + n for affine analysis
        assert e == n * i + n

    def test_negation(self):
        n = Sym("n")
        assert -n + n == Const(0)

    def test_as_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            as_expr("hello")

    def test_bool_coerces_to_int(self):
        assert as_expr(True) == Const(1)


class TestEvaluate:
    def test_const(self):
        assert Const(7).evaluate() == 7

    def test_sym_bound(self):
        assert Sym("n").evaluate({"n": 1100}) == 1100

    def test_sym_unbound_raises(self):
        with pytest.raises(EvalError):
            Sym("n").evaluate({})

    def test_affine(self):
        n, i = Sym("n"), Sym("i")
        e = n * i + 3
        assert e.evaluate({"n": 10, "i": 4}) == 43

    def test_floordiv(self):
        n = Sym("n")
        assert (n // 4).evaluate({"n": 10}) == 2

    def test_floordiv_by_zero(self):
        n, d = Sym("n"), Sym("d")
        with pytest.raises(EvalError):
            (n // d).evaluate({"n": 4, "d": 0})

    def test_mod(self):
        n = Sym("n")
        assert (n % 4).evaluate({"n": 10}) == 2

    def test_min_max(self):
        a, b = Sym("a"), Sym("b")
        assert Min.make(a, b).evaluate({"a": 3, "b": 9}) == 3
        assert Max.make(a, b).evaluate({"a": 3, "b": 9}) == 9


class TestSubs:
    def test_full_substitution_collapses(self):
        n = Sym("n")
        assert (n * 4 + 2).subs({"n": 10}) == Const(42)

    def test_partial_substitution(self):
        n, m = Sym("n"), Sym("m")
        e = (n * m).subs({"n": 3})
        assert e == Const(3) * m

    def test_substitute_expression(self):
        n, k = Sym("n"), Sym("k")
        assert Sym("n").subs({"n": k + 1}) == k + 1

    def test_min_substitution(self):
        e = Min.make(Sym("a"), Const(5)).subs({"a": 3})
        assert e == Const(3)


class TestStructural:
    def test_hashable_as_dict_key(self):
        table = {Sym("n") * 4: "stride"}
        assert table[Sym("n") * 4] == "stride"

    def test_equality_is_structural(self):
        assert Sym("x") + 1 == Sym("x") + 1
        assert Sym("x") + 1 != Sym("y") + 1

    def test_free_symbols(self):
        n, m = Sym("n"), Sym("m")
        assert (n * m + 3).free_symbols() == {"n", "m"}

    def test_constant_value(self):
        assert (Const(2) * 3).constant_value() == 6
        assert (Sym("n") * 3).constant_value() is None

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Const(1).value = 2
        with pytest.raises(AttributeError):
            Sym("n").name = "m"

    def test_repr_sym_uses_brackets(self):
        assert repr(Sym("max")) == "[max]"

    def test_floordiv_identity(self):
        n = Sym("n")
        assert FloorDiv.make(n, Const(1)) == n

    def test_mod_one_is_zero(self):
        assert Mod.make(Sym("n"), Const(1)) == Const(0)

    def test_zero_div_raises_at_construction(self):
        with pytest.raises(ZeroDivisionError):
            FloorDiv.make(Sym("n"), Const(0))
        with pytest.raises(ZeroDivisionError):
            Mod.make(Sym("n"), Const(0))

    def test_min_idempotent(self):
        n = Sym("n")
        assert Min.make(n, n) == n
        assert Max.make(n, n) == n

    def test_mul_nary_children(self):
        a, b, c = Sym("a"), Sym("b"), Sym("c")
        e = a * b * c
        assert isinstance(e, Mul)
        assert set(e.children()) == {a, b, c}
