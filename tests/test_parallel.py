"""Differential harness for the parallel sweep engine.

The engine's contract is *bit-identity*: a ``--jobs N`` sweep must
produce byte-for-byte the same measurement/prediction streams — and the
same golden-selection JSON — as the sequential sweep, with results,
merged metrics and spliced trace spans in case-declaration order no
matter which worker finishes first.  Every test here compares canonical
JSON serializations of both sides, so an equality failure is a real
output divergence, not a float-repr artefact.
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments.common import clear_caches, measure_suite, predict_suite
from repro.experiments.replay import run_replay
from repro.experiments.trace import run_trace
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    CHUNK_ENV,
    AnalysisCache,
    ObsTaskResult,
    SweepEngine,
    current_cache,
    merge_tracer_payloads,
    resolve_jobs,
    tracer_payload,
)
from repro.polybench import SUITE, benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime

from .test_golden_selection import GOLDEN, build_selection_table


# ---------------------------------------------------------------------------
# Canonical serializations: byte-identity is asserted on these strings
# ---------------------------------------------------------------------------


def canon_measurements(ms) -> str:
    return json.dumps(
        [
            [m.case.name, m.cpu_seconds, m.gpu_kernel_seconds,
             m.gpu_transfer_seconds]
            for m in ms
        ]
    )


def canon_predictions(ps) -> str:
    return json.dumps(
        [
            [p.cpu.seconds, p.gpu.seconds, p.winner, p.predicted_speedup]
            for p in ps
        ]
    )


# ---------------------------------------------------------------------------
# Module-level worker tasks (pool tasks must pickle by qualified name)
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _reverse_sleep(task):
    """Finishes in *reverse* declaration order; returns its index."""
    index, total = task
    time.sleep(0.02 * (total - index))
    return index


def _obs_task(index):
    tracer = Tracer()
    metrics = MetricsRegistry()
    metrics.counter("tasks_total").inc()
    metrics.counter("by_index", index=index).inc(index)
    metrics.histogram("values", buckets=(1.0, 10.0)).observe(float(index))
    with tracer.span("work", index=index):
        pass
    return ObsTaskResult(
        value=index,
        metrics=metrics.snapshot(),
        trace=tracer_payload(tracer),
    )


def _stamped_cached_task(task):
    """Compute through the worker's analysis cache, stamping each compute.

    Touches ``compute-<index>`` in ``stamp_dir`` every time the compute
    callback actually runs — so the stamp files on disk are an exact
    census of which values were *computed* rather than replayed from
    shipped cache entries.
    """
    from repro.machines import platform_by_name

    stamp_dir, index = task

    def compute():
        Path(stamp_dir, f"compute-{index}").touch()
        return [index * index]

    value = current_cache().get_or_compute(
        "test.ship", {"index": index}, platform_by_name("p9-v100"), compute
    )
    return value[0]


def _selection_fragment(task):
    """One benchmark's slice of the golden selection table."""
    from repro.machines import platform_by_name

    plat_name, bench_name = task
    platform = platform_by_name(plat_name)
    runtime = OffloadingRuntime(platform, policy=ModelGuided())
    spec = benchmark_by_name(bench_name)
    env = spec.env("benchmark")
    fragment = {}
    for region in spec.build():
        runtime.compile_region(region)
        rec = runtime.launch(region.name, env)
        fragment[region.name] = {
            "chosen": rec.target,
            "pred_cpu_s": rec.prediction.cpu.seconds,
            "pred_gpu_s": rec.prediction.gpu.seconds,
        }
    return fragment


# ---------------------------------------------------------------------------
# Engine unit tests
# ---------------------------------------------------------------------------


class TestResolveJobs:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_garbage_env_degrades_to_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1

    def test_floor_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-7) == 1


class TestEngineOrdering:
    def test_sequential_map(self):
        assert SweepEngine(1).map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_map_matches_sequential(self):
        items = list(range(8))
        assert SweepEngine(4).map(_square, items) == [x * x for x in items]

    def test_declaration_order_beats_completion_order(self):
        # task 0 sleeps longest and completes *last*; the engine must
        # still put its result first
        total = 4
        tasks = [(i, total) for i in range(total)]
        assert SweepEngine(total).map(_reverse_sleep, tasks) == [0, 1, 2, 3]

    def test_single_item_stays_in_process(self):
        # one item never pays for a pool, even with jobs > 1
        assert SweepEngine(8).map(_square, [5]) == [25]


class TestEngineObs:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_merged_metrics_equal_single_process(self, jobs):
        indexes = list(range(5))
        single = MetricsRegistry()
        for i in indexes:
            single.merge_snapshot(_obs_task(i).metrics)
        sweep = SweepEngine(jobs).map_obs(_obs_task, indexes)
        assert sweep.values == indexes
        assert sweep.metrics.snapshot() == single.snapshot()

    def test_merged_spans_declaration_ordered_and_increasing(self):
        sweep = SweepEngine(3).map_obs(_obs_task, range(5))
        names = [s.attrs["index"] for s in sweep.tracer.spans]
        assert names == list(range(5))
        stamps = [s.start_ts for s in sweep.tracer.spans]
        assert stamps == sorted(stamps)

    def test_merge_tracer_payloads_is_pure(self):
        payloads = [_obs_task(i).trace for i in range(3)]
        a = merge_tracer_payloads(payloads)
        b = merge_tracer_payloads(payloads)
        assert [
            (s.name, s.start_ts, s.end_ts, s.index) for s in a.spans
        ] == [(s.name, s.start_ts, s.end_ts, s.index) for s in b.spans]


# ---------------------------------------------------------------------------
# Differential harness: suite sweeps
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_caches()
    yield
    clear_caches()


class TestDifferentialSweeps:
    def test_measure_suite_bitwise(self):
        seq = canon_measurements(measure_suite("p9-v100", "test"))
        clear_caches()
        par = canon_measurements(measure_suite("p9-v100", "test", jobs=2))
        assert par == seq

    def test_predict_suite_bitwise(self):
        seq = canon_predictions(predict_suite("p9-v100", "test"))
        clear_caches()
        par = canon_predictions(predict_suite("p9-v100", "test", jobs=2))
        assert par == seq

    def test_predict_uncalibrated_bitwise(self):
        seq = canon_predictions(
            predict_suite("p9-v100", "test", calibrated=False)
        )
        clear_caches()
        par = canon_predictions(
            predict_suite("p9-v100", "test", calibrated=False, jobs=2)
        )
        assert par == seq

    def test_jobs_excluded_from_memo_key(self):
        first = measure_suite("p9-v100", "test", jobs=2)
        # memo hit: same object, no second sweep regardless of jobs value
        assert measure_suite("p9-v100", "test") is first


class TestDifferentialTrace:
    def test_records_and_metrics_match_sequential(self):
        seq = run_trace(mode="test")
        par = run_trace(mode="test", jobs=2)
        assert par.region_names == seq.region_names
        assert par.records == seq.records
        sm, pm = seq.metrics.snapshot(), par.metrics.snapshot()
        assert pm["counters"] == sm["counters"]
        assert pm["gauges"] == sm["gauges"]
        assert set(pm["histograms"]) == set(sm["histograms"])
        for key, want in sm["histograms"].items():
            got = pm["histograms"][key]
            # integer contents are exact; the float sum is a fold whose
            # grouping moved, so it may differ in the last ulp
            assert got["buckets"] == want["buckets"]
            assert got["count"] == want["count"]
            assert got["sum"] == pytest.approx(want["sum"], rel=1e-12)

    def test_parallel_trace_is_deterministic(self):
        a = run_trace(mode="test", benchmarks=["gemm", "atax"], jobs=2)
        b = run_trace(mode="test", benchmarks=["gemm", "atax"], jobs=2)
        assert a.chrome_json() == b.chrome_json()

    def test_parallel_trace_timestamps_strictly_ordered(self):
        result = run_trace(mode="test", benchmarks=["gemm", "atax"], jobs=2)
        stamps = [s.start_ts for s in result.tracer.spans]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)


@pytest.fixture(scope="module")
def sequential_canon():
    """Sequential canonical sweep strings, computed once for the module."""
    clear_caches()
    ms = canon_measurements(measure_suite("p9-v100", "test"))
    ps = canon_predictions(predict_suite("p9-v100", "test"))
    clear_caches()
    return ms, ps


class TestDifferentialChunked:
    """Chunked parallel sweeps are byte-identical to sequential.

    The full jobs x chunk grid from the issue: explicit tiny chunks
    (maximum IPC), the auto ``ceil(n/jobs)`` size, and a chunk larger
    than the whole grid (one chunk, jobs-1 idle workers).
    """

    @pytest.mark.parametrize("chunk", [1, 3, None, 10_000])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_measure_and_predict_bitwise(self, sequential_canon, jobs, chunk):
        seq_ms, seq_ps = sequential_canon
        par_ms = canon_measurements(
            measure_suite("p9-v100", "test", jobs=jobs, chunk=chunk)
        )
        par_ps = canon_predictions(
            predict_suite("p9-v100", "test", jobs=jobs, chunk=chunk)
        )
        assert par_ms == seq_ms
        assert par_ps == seq_ps

    def test_chunk_env_fallback(self, monkeypatch, sequential_canon):
        seq_ms, _ = sequential_canon
        monkeypatch.setenv(CHUNK_ENV, "3")
        assert SweepEngine(2).chunk == 3
        par_ms = canon_measurements(measure_suite("p9-v100", "test", jobs=2))
        assert par_ms == seq_ms

    def test_chunk_env_garbage_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "several")
        assert SweepEngine(2).chunk is None

    def test_explicit_chunk_beats_env(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "3")
        assert SweepEngine(2, chunk=5).chunk == 5

    def test_warm_cache_chunked_bitwise(self, sequential_canon, tmp_path):
        """Parallel + persistent cache: populate, then replay, stay equal.

        The parent absorbs the workers' shipped entries into the
        activated disk cache, so the follow-up sequential replay must be
        pure cache service: zero misses, every value decoded from the
        store, byte-identical rows.
        """
        seq_ms, seq_ps = sequential_canon
        cache_dir = str(tmp_path / "cache")
        warm = AnalysisCache(cache_dir)
        with warm.activate():
            par_ms = canon_measurements(
                measure_suite("p9-v100", "test", jobs=2, chunk=3)
            )
            par_ps = canon_predictions(
                predict_suite("p9-v100", "test", jobs=2, chunk=3)
            )
        assert par_ms == seq_ms
        assert par_ps == seq_ps
        # the parent cache absorbed the workers' entries: a sequential
        # warm replay serves every value from the store, bit-identically
        clear_caches(persistent=False)
        replay = AnalysisCache(cache_dir)
        with replay.activate():
            warm_ms = canon_measurements(measure_suite("p9-v100", "test"))
            warm_ps = canon_predictions(predict_suite("p9-v100", "test"))
        assert warm_ms == seq_ms
        assert warm_ps == seq_ps
        assert replay.hits > 0
        assert replay.misses == 0


class TestCacheEntryShipping:
    """Warm state propagates: entries computed once never recompute."""

    def test_second_sweep_recomputes_nothing(self, tmp_path):
        stamps = tmp_path / "stamps"
        stamps.mkdir()
        items = [(str(stamps), i) for i in range(6)]
        engine = SweepEngine(2, chunk=1)
        first = engine.map(_stamped_cached_task, items)
        assert first == [i * i for i in range(6)]
        after_first = sorted(p.name for p in stamps.iterdir())
        assert after_first == sorted(f"compute-{i}" for i in range(6))
        # different chunking lands cases on *different* slots: values must
        # arrive via the parent store broadcast, not slot-local memory
        again = SweepEngine(2, chunk=3).map(_stamped_cached_task, items)
        assert again == first
        assert sorted(p.name for p in stamps.iterdir()) == after_first


class TestDifferentialReplay:
    """run_replay(jobs=N) rows match the sequential scenario loop."""

    SCENARIOS = ("steady", "fault-storm", "overload-reject")

    def test_replay_rows_match_sequential(self):
        kwargs = dict(launches=400, seed=7, scenarios=self.SCENARIOS)
        seq = run_replay(**kwargs)
        par = run_replay(jobs=2, **kwargs)
        assert [r.scenario for r in par.rows] == list(self.SCENARIOS)
        assert par == seq


class TestGoldenSelectionParallel:
    def test_parallel_selection_table_matches_golden_bytes(self):
        tasks = [("p9-v100", spec.name) for spec in SUITE]
        fragments = SweepEngine(2).map(_selection_fragment, tasks)
        table = {}
        for fragment in fragments:
            table.update(fragment)
        rendered = json.dumps(table, indent=2, sort_keys=True) + "\n"
        assert rendered == GOLDEN.read_text()

    def test_parallel_selection_table_matches_sequential(self):
        sequential = build_selection_table()
        tasks = [("p9-v100", spec.name) for spec in SUITE]
        fragments = SweepEngine(2).map(_selection_fragment, tasks)
        table = {}
        for fragment in fragments:
            table.update(fragment)
        assert json.dumps(table, sort_keys=True) == json.dumps(
            sequential, sort_keys=True
        )
