"""Tests for the multi-tenant offload service (repro.replay.service).

Pins the service with three harnesses:

* a differential suite — the service in its legacy-equivalent
  configuration is byte-identical to the historical single-server FIFO
  across the whole chaos/overload/budget grid, and seeded service-mode
  reruns are byte-identical to themselves;
* derandomized hypothesis property tests — request conservation, no
  compute server runs two phases at once, per-tenant FIFO within a
  lane, and the dispatch clock never goes backwards;
* a bulkhead regression (multi-server admission used to leak slots
  when finishes completed out of order) plus admission-edge and
  ``Budget.charge`` refund-rejection coverage.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import PLATFORM_P9_V100
from repro.replay import (
    AdmissionConfig,
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    ServiceConfig,
    WorkloadConfig,
    score_run,
)
from repro.runtime import (
    FALLBACK_BULKHEAD,
    Budget,
    Bulkhead,
    ExecutionMemo,
)


@pytest.fixture(scope="module")
def shared():
    """One memo + policy cache shared by every engine in this module."""
    return {"memo": ExecutionMemo(), "policy": MemoizedPolicy()}


def _engine(cfg: ReplayConfig, shared) -> ReplayEngine:
    return ReplayEngine(cfg, policy=shared["policy"], memo=shared["memo"])


def _twin_runs(shared, **cfg_kwargs):
    """One legacy run and one compat-mode service run of the same trace."""
    legacy = _engine(
        ReplayConfig(platform=PLATFORM_P9_V100, **cfg_kwargs), shared
    ).run()
    compat = _engine(
        ReplayConfig(
            platform=PLATFORM_P9_V100,
            service=True,
            service_config=ServiceConfig.legacy_equivalent(),
            **cfg_kwargs,
        ),
        shared,
    ).run()
    return legacy, compat


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(quantum_s=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(quantum_s=math.nan)
        with pytest.raises(ValueError):
            ServiceConfig(servers=0)
        with pytest.raises(ValueError):
            ServiceConfig(host_servers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)

    def test_legacy_equivalent_is_single_serial_lane(self):
        cfg = ServiceConfig.legacy_equivalent()
        assert cfg.servers == cfg.host_servers == cfg.max_batch == 1
        assert not cfg.batching and not cfg.overlap
        assert cfg.quantum_s == 0.0


class TestCompatDifferential:
    """service=True with the legacy-equivalent shape is a byte-for-byte

    re-implementation of the single-server FIFO: same records, same
    outcomes, same horizon, same score, same queue accounting — across
    steady state, chaos, every overload policy, deadline budgets, and
    hedged launches behind a bulkhead.
    """

    SCENARIOS = {
        "steady": dict(workload=WorkloadConfig(launches=400, seed=11)),
        "fault-storm": dict(
            workload=WorkloadConfig(launches=600, seed=5),
            chaos=ChaosSchedule(
                windows=(
                    ChaosWindow(
                        name="storm",
                        kind="fault-storm",
                        start_s=0.15,
                        stop_s=0.35,
                        probability=0.9,
                    ),
                ),
                seed=5,
            ),
        ),
        "overload-reject": dict(
            workload=WorkloadConfig(launches=400, seed=3, mean_interarrival_s=1e-6),
            admission=AdmissionConfig(capacity=8, policy="reject"),
        ),
        "overload-degrade": dict(
            workload=WorkloadConfig(launches=400, seed=3, mean_interarrival_s=1e-6),
            admission=AdmissionConfig(capacity=8, policy="degrade"),
        ),
        "overload-defer": dict(
            workload=WorkloadConfig(launches=400, seed=3, mean_interarrival_s=1e-6),
            admission=AdmissionConfig(capacity=8, policy="defer", defer_capacity=16),
        ),
        "budget": dict(
            workload=WorkloadConfig(launches=400, seed=7, mean_interarrival_s=1e-5),
            budget_s=2e-3,
        ),
        "hedge-bulkhead": dict(
            workload=WorkloadConfig(launches=400, seed=9),
            hedge=True,
            bulkhead_slots=2,
        ),
        "tenants": dict(
            workload=WorkloadConfig(launches=400, seed=13, tenants=3),
        ),
    }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_compat_mode_is_byte_identical(self, scenario, shared):
        legacy, compat = _twin_runs(shared, **self.SCENARIOS[scenario])

        assert compat.records == legacy.records
        assert compat.horizon_s == legacy.horizon_s
        assert len(compat.outcomes) == len(legacy.outcomes)
        for ours, theirs in zip(compat.outcomes, legacy.outcomes):
            assert ours.index == theirs.index
            assert ours.outcome == theirs.outcome
            assert ours.arrival_s == theirs.arrival_s
            assert ours.start_s == theirs.start_s
            assert ours.record == theirs.record
            # finish_s is the one field only the service fills in; in
            # compat mode it must equal start + executed wall time
            if ours.record is not None and ours.start_s is not None:
                assert ours.finish_s == pytest.approx(
                    ours.start_s + ours.record.executed_seconds
                )

        # scores agree on everything except the service-only extras
        ours = score_run(compat).to_payload()
        theirs = score_run(legacy).to_payload()
        ours.pop("service")
        theirs.pop("service")
        assert ours == theirs

        # queue accounting: every legacy counter has the same value
        legacy_snap = legacy.queue.snapshot()
        compat_snap = compat.queue.snapshot()
        for key, value in legacy_snap.items():
            assert compat_snap[key] == value, key

    def test_service_mode_seeded_rerun_is_byte_identical(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(launches=500, seed=4, tenants=3),
            service=True,
        )
        first = _engine(cfg, shared).run()
        second = _engine(cfg, shared).run()
        assert first.records == second.records
        assert first.outcomes == second.outcomes
        assert first.horizon_s == second.horizon_s
        a = json.dumps(score_run(first).to_payload(), sort_keys=True)
        b = json.dumps(score_run(second).to_payload(), sort_keys=True)
        assert a == b


class TestServiceMode:
    @pytest.fixture(scope="class")
    def run(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=800, seed=2, tenants=3, mean_interarrival_s=4e-4
            ),
            service=True,
        )
        return _engine(cfg, shared).run()

    def test_every_request_has_exactly_one_outcome(self, run):
        assert [o.index for o in run.outcomes] == list(range(800))
        assert sum(run.outcome_counts().values()) == 800

    def test_compute_servers_never_double_book(self, run):
        by_server: dict = {}
        for lane, server, comp_start, comp_end, _idx, _tenant in run.service.timeline:
            by_server.setdefault((lane, server), []).append((comp_start, comp_end))
        for spans in by_server.values():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                assert next_start >= prev_end

    def test_pipeline_finish_at_or_after_compute(self, run):
        for o in run.outcomes:
            if o.record is None or o.start_s is None:
                continue
            assert o.finish_s >= o.start_s

    def test_per_device_metrics_recorded(self, run):
        snap = run.metrics.snapshot()
        depth_keys = [k for k in snap["quantiles"] if "service_queue_depth" in k]
        occupancy = [k for k in snap["quantiles"] if "service_occupancy" in k]
        assert any("cpu" in k for k in depth_keys)
        assert any("gpu" in k for k in depth_keys)
        assert occupancy

    def test_score_carries_tenants_and_fairness(self, run):
        score = score_run(run)
        assert len(score.tenants) == 3
        assert sum(t.launches for t in score.tenants) == score.launches
        for t in score.tenants:
            assert t.latency_p50_s <= t.latency_p95_s <= t.latency_p99_s
        assert math.isfinite(score.fairness_p99) and score.fairness_p99 >= 1.0
        payload = score.to_payload()
        assert payload["service"]["lanes"].keys() == {"cpu", "gpu"}

    def test_lane_accounting_sums_to_aggregate(self, run):
        snap = run.queue.snapshot()
        lanes = snap["lanes"]
        for key in ("admitted", "shed", "degraded", "deferred", "resumed"):
            assert sum(lane[key] for lane in lanes.values()) == snap[key], key

    def test_multi_device_rejected(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(launches=10, seed=0),
            service=True,
            multi_device=True,
        )
        with pytest.raises(ValueError):
            ReplayEngine(cfg, memo=shared["memo"]).run()


# one module-scope memo for the property tests: hypothesis re-invokes
# the test body per example, and a cold memo per example is pure waste
_PROP_SHARED = {"memo": ExecutionMemo(), "policy": MemoizedPolicy()}


def _service_run(seed, *, launches=150, tenants=3, capacity=None, policy="reject"):
    admission = (
        AdmissionConfig()
        if capacity is None
        else AdmissionConfig(capacity=capacity, policy=policy)
    )
    cfg = ReplayConfig(
        platform=PLATFORM_P9_V100,
        workload=WorkloadConfig(
            launches=launches, seed=seed, tenants=tenants, mean_interarrival_s=5e-4
        ),
        admission=admission,
        service=True,
    )
    return _engine(cfg, _PROP_SHARED).run()


class TestServiceProperties:
    """Derandomized hypothesis sweep over trace seeds and admission shapes."""

    @settings(derandomize=True, deadline=None, max_examples=6)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        capacity=st.sampled_from([None, 4, 16]),
        policy=st.sampled_from(["reject", "degrade", "defer"]),
    )
    def test_conservation(self, seed, capacity, policy):
        run = _service_run(seed, capacity=capacity, policy=policy)
        assert sorted(o.index for o in run.outcomes) == list(range(150))
        # degraded launches run inline at the admission door; everything
        # else that produced a record went through a lane dispatch
        lane_launched = {
            o.index
            for o in run.outcomes
            if o.record is not None and o.outcome != "degraded"
        }
        logged = {entry[1] for entry in run.service.dispatch_log}
        assert logged == lane_launched

    @settings(derandomize=True, deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_compute_exclusivity(self, seed):
        run = _service_run(seed, launches=200)
        by_server: dict = {}
        for lane, server, comp_start, comp_end, _idx, _tenant in run.service.timeline:
            assert comp_end >= comp_start
            by_server.setdefault((lane, server), []).append((comp_start, comp_end))
        for spans in by_server.values():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                assert next_start >= prev_end

    @settings(derandomize=True, deadline=None, max_examples=6)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_per_tenant_fifo_within_lane(self, seed):
        # unbounded admission: nothing is parked or shed, so a tenant's
        # launches must leave each lane in arrival (= index) order
        run = _service_run(seed, launches=200)
        last: dict = {}
        for lane, index, tenant, _begin, _clock in run.service.dispatch_log:
            key = (lane, tenant)
            assert last.get(key, -1) < index
            last[key] = index

    @settings(derandomize=True, deadline=None, max_examples=6)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        capacity=st.sampled_from([None, 6]),
    )
    def test_dispatch_clock_never_goes_backwards(self, seed, capacity):
        run = _service_run(seed, capacity=capacity, policy="defer")
        clocks = [entry[4] for entry in run.service.dispatch_log]
        assert all(a <= b for a, b in zip(clocks, clocks[1:]))
        arrival = {r.index: r.arrival_s for r in run.requests}
        for _lane, index, _tenant, begin, _clock in run.service.dispatch_log:
            assert begin >= arrival[index]


class TestBulkheadRegression:
    def test_pending_sweeps_out_of_order_finishes(self):
        # the latent gap: finishes book in dispatch order, not finish
        # order — a sorted-prefix drain would leave the elapsed t=7
        # booking counted as live at t=8 and leak the slot
        bulkhead = Bulkhead(4)
        bulkhead.book("gpu", 10.0)
        bulkhead.book("gpu", 7.0)
        assert bulkhead.pending("gpu", 8.0) == 1
        assert bulkhead.pending("gpu", 11.0) == 0

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            Bulkhead(0)

    def test_service_reroutes_on_saturated_bulkhead(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=1500, seed=2, mean_interarrival_s=5e-4
            ),
            service=True,
            bulkhead_slots=1,
            service_config=ServiceConfig(servers=2, host_servers=2),
        )
        run = _engine(cfg, shared).run()
        rerouted = [
            r for r in run.records if r.fallback == FALLBACK_BULKHEAD
        ]
        assert rerouted, "multi-server admission never saturated the bulkhead"
        assert run.runtime.bulkheads.rejections.get("gpu", 0) == len(rerouted)
        assert all(
            r.target == "cpu" and r.requested_target == "gpu" for r in rerouted
        )


class TestCoverageEdges:
    def test_budget_rejects_refunds(self):
        budget = Budget(1.0)
        budget.charge(0.25)
        with pytest.raises(ValueError):
            budget.charge(-0.1)
        with pytest.raises(ValueError):
            budget.charge(math.nan)
        with pytest.raises(ValueError):
            budget.charge(math.inf)
        assert budget.remaining() == pytest.approx(0.75)
        assert not budget.exhausted

    def test_budget_requires_finite_positive_total(self):
        with pytest.raises(ValueError):
            Budget(0.0)
        with pytest.raises(ValueError):
            Budget(math.inf)
        with pytest.raises(ValueError):
            Budget(math.nan)

    def test_service_door_expires_stale_waiters(self, shared):
        # a tight deadline on an overloaded trace must shed at the door
        # (wait >= budget) without charging or launching
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=400, seed=7, mean_interarrival_s=1e-5
            ),
            service=True,
            budget_s=2e-3,
        )
        run = _engine(cfg, shared).run()
        counts = run.outcome_counts()
        assert counts.get("expired", 0) > 0
        assert sum(counts.values()) == 400
        expired = [o for o in run.outcomes if o.outcome == "expired"]
        assert all(o.record is None for o in expired)

    def test_service_defer_parks_and_resumes(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=400, seed=3, mean_interarrival_s=1e-6
            ),
            admission=AdmissionConfig(capacity=8, policy="defer", defer_capacity=16),
            service=True,
        )
        run = _engine(cfg, shared).run()
        snap = run.queue.snapshot()
        assert snap["deferred"] > 0 and snap["resumed"] > 0
        assert sum(run.outcome_counts().values()) == 400

    def test_service_degrade_forces_the_host(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=400, seed=3, mean_interarrival_s=1e-6
            ),
            admission=AdmissionConfig(capacity=8, policy="degrade"),
            service=True,
        )
        run = _engine(cfg, shared).run()
        degraded = [o for o in run.outcomes if o.outcome == "degraded"]
        assert degraded
        assert all(
            o.record is not None and o.record.admission is not None
            for o in degraded
        )

    def test_experiment_small_grid_passes_and_serializes(self):
        from repro.experiments import run_service

        result = run_service(
            launches=1000,
            scenarios=("uniform-steady", "uniform-storm", "skewed-burst"),
        )
        assert result.passed
        assert result.overlap_wins >= 1
        for row in result.rows:
            assert row.score.tenants and row.legacy.tenants
            assert row.score.requests == row.legacy.requests
        payload = result.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert result.render()

    def test_experiment_rejects_bad_grids(self):
        from repro.experiments import run_service

        with pytest.raises(ValueError):
            run_service(launches=100, scenarios=("uniform-steady", "meteor"))
        with pytest.raises(ValueError):
            run_service(launches=100, tenants=1)

    def test_batching_waives_transfers_under_pressure(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(
                launches=1200, seed=6, mean_interarrival_s=2e-4
            ),
            service=True,
            service_config=ServiceConfig(quantum_s=2e-3, max_batch=8),
        )
        run = _engine(cfg, shared).run()
        snap = run.queue.snapshot()
        assert snap["batches"] > 0
        assert snap["transfers_waived"] == snap["batched"] or (
            snap["transfers_waived"] <= snap["batched"]
        )
