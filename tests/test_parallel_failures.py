"""Worker-failure semantics of the warm persistent-worker engine.

The engine's failure contract is *loud, never lossy*: a deterministic
task exception aborts the sweep with a :class:`ChunkFailure` naming the
offending case; a worker-process death restarts the pool once —
re-broadcasting the full warm store to the fresh workers — and resubmits
every unfinished chunk; a second death fails the sweep naming every case
that never completed.  Rows are never silently dropped, and warm state
survives the restart.

The crash tasks kill the worker with ``os._exit`` (bypassing Python
teardown, like an OOM-kill would); crash-once coordination goes through
a flag file because the replacement worker is a different process.
"""

import os
from pathlib import Path

import pytest

from repro.parallel import ChunkFailure, SweepEngine, current_cache, shutdown_pools
from repro.parallel.engine import _POOLS


@pytest.fixture(autouse=True)
def _fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


# ---------------------------------------------------------------------------
# Module-level worker tasks (pool tasks must pickle by qualified name)
# ---------------------------------------------------------------------------


def _poison(task):
    _, index = task
    if index == 3:
        raise ValueError("poisoned case payload")
    return index


def _crash_always(task):
    _, index = task
    if index == 2:
        os._exit(17)
    return index


def _crash_once(task):
    flag_dir, index = task
    if index == 2:
        flag = Path(flag_dir, "crashed-once")
        if not flag.exists():
            flag.write_text("crashed")
            os._exit(17)
    return index


def _cached_crash_once(task):
    """Cache-computing task that kills its worker once at index 2.

    Stamps ``compute-<index>`` whenever the compute callback actually
    runs, so the stamp census proves whether the restarted pool replayed
    the re-broadcast warm store or recomputed from scratch.
    """
    from repro.machines import platform_by_name

    stamp_dir, index = task
    if index == 2:
        flag = Path(stamp_dir, "crashed-once")
        if not flag.exists():
            flag.write_text("crashed")
            os._exit(17)

    def compute():
        Path(stamp_dir, f"compute-{index}").touch()
        return [index + 100]

    value = current_cache().get_or_compute(
        "test.rebuild", {"index": index}, platform_by_name("p9-v100"), compute
    )
    return value[0]


def _items(tmp_path, n=6):
    return [(str(tmp_path), i) for i in range(n)]


def _labels(n=6):
    return [f"case-{i}" for i in range(n)]


class TestPoisonedChunk:
    def test_task_exception_names_the_case(self, tmp_path):
        with pytest.raises(ChunkFailure) as err:
            SweepEngine(2, chunk=2).map(
                _poison, _items(tmp_path), labels=_labels()
            )
        assert err.value.cases == ("case-3",)
        assert "case-3" in str(err.value)
        assert "ValueError" in str(err.value)

    def test_sequential_engine_raises_the_original(self, tmp_path):
        # jobs=1 runs in-process: the task exception propagates unwrapped
        with pytest.raises(ValueError, match="poisoned case payload"):
            SweepEngine(1).map(_poison, _items(tmp_path), labels=_labels())


class TestCrashedWorker:
    def test_persistent_crash_fails_naming_unfinished_cases(self, tmp_path):
        # the chunk holding index 2 dies on the original pool AND on the
        # restarted one; the failure names exactly that chunk's cases
        with pytest.raises(ChunkFailure) as err:
            SweepEngine(2, chunk=2).map(
                _crash_always, _items(tmp_path), labels=_labels()
            )
        assert err.value.cases == ("case-2", "case-3")
        assert "case-2" in str(err.value)

    def test_crash_once_is_resubmitted_to_completion(self, tmp_path):
        engine = SweepEngine(2, chunk=2)
        values = engine.map(_crash_once, _items(tmp_path), labels=_labels())
        assert values == list(range(6))  # no row lost to the dead worker
        assert _POOLS[(2, None)].restarts == 1

    def test_warm_state_rebuilt_after_restart(self, tmp_path):
        stamps = tmp_path / "stamps"
        stamps.mkdir()
        items = [(str(stamps), i) for i in range(6)]
        # prime the parent store: every value computed exactly once
        warm = SweepEngine(2, chunk=2).map(
            _cached_crash_once, [(str(stamps), i) for i in (0, 1, 3, 4, 5)]
        )
        assert warm == [100, 101, 103, 104, 105]
        primed = sorted(p.name for p in stamps.iterdir())
        # index 2 kills its worker; the restarted pool gets the full
        # store re-broadcast, so the resubmitted chunk *replays* the
        # primed values instead of recomputing them
        values = SweepEngine(2, chunk=2).map(
            _cached_crash_once, items, labels=_labels()
        )
        assert values == [100 + i for i in range(6)]
        assert _POOLS[(2, None)].restarts == 1
        after = sorted(p.name for p in stamps.iterdir())
        assert set(after) - set(primed) == {"compute-2", "crashed-once"}
