"""Unit tests for the profile-guided extension (Section IV.B future work)."""

import numpy as np
import pytest

from repro.analysis import extract_loadout, paper_trip_abstraction
from repro.ir import Region, cmp
from repro.profiling import collect_profile, profiled_loadout, profiled_trip_fn
from repro.sim import allocate_arrays

from .kernels import build_gemm, build_rowwise


def build_threshold_kernel() -> Region:
    """A data-dependent branch: the 50% abstraction is usually wrong."""
    r = Region("threshold")
    n = r.param("n")
    A = r.array("A", (n,))
    B = r.array("B", (n,), inout=True)
    t = r.scalar("t")
    with r.parallel_loop("i", n) as i:
        with r.if_(cmp("gt", A[i], t)):
            r.store(B[i], A[i] * A[i] + B[i])
    return r


class TestCollectProfile:
    def test_records_loop_trips(self):
        region = build_rowwise()
        prof = collect_profile(region, {"n": 12})
        inner = region.body[0].body[1]  # LocalDef, Loop, Store
        from repro.ir import Loop

        assert isinstance(inner, Loop)
        assert prof.mean_trips(inner) == 12.0

    def test_records_branch_fraction(self):
        region = build_threshold_kernel()
        # inputs are uniform in (0.1, 1.0): threshold 0.55 -> ~half taken
        prof = collect_profile(region, {"n": 512}, {"t": 0.55}, seed=3)
        if_stmt = region.body[0].body[0]
        frac = prof.taken_fraction(if_stmt)
        assert 0.3 < frac < 0.7

    def test_extreme_threshold(self):
        region = build_threshold_kernel()
        prof = collect_profile(region, {"n": 256}, {"t": 2.0})  # never taken
        if_stmt = region.body[0].body[0]
        assert prof.taken_fraction(if_stmt) == 0.0

    def test_custom_arrays(self):
        region = build_threshold_kernel()
        arrays = allocate_arrays(region, {"n": 64}, seed=0)
        arrays["A"][:] = 1.0  # always above threshold
        prof = collect_profile(region, {"n": 64}, {"t": 0.5}, arrays=arrays)
        assert prof.taken_fraction(region.body[0].body[0]) == 1.0


class TestProfiledTripFn:
    def test_runtime_values_win(self):
        region = build_rowwise()
        prof = collect_profile(region, {"n": 8})
        trips = profiled_trip_fn(prof, {"n": 4096})
        inner = region.body[0].body[1]
        assert trips(inner) == 4096.0  # exact runtime value, not the 8s

    def test_profile_rescales_across_sizes(self):
        region = build_rowwise()
        prof = collect_profile(region, {"n": 8})
        # no direct runtime value for n; rescaling uses training + launch
        trips = profiled_trip_fn(prof, {})
        inner = region.body[0].body[1]
        # without a launch binding the training observation is returned
        assert trips(inner) == 8.0

    def test_fallback_to_abstraction(self):
        gemm = build_gemm()
        other = build_rowwise()
        prof = collect_profile(other, {"n": 8})
        trips = profiled_trip_fn(prof, {})
        # gemm's loops were never profiled: the 128 abstraction applies
        j_loop = gemm.body[0].body[0]
        assert trips(j_loop) == 128.0


class TestProfiledLoadout:
    def test_branch_probability_from_profile(self):
        region = build_threshold_kernel()
        arrays = allocate_arrays(region, {"n": 128}, seed=1)
        arrays["A"][:] = np.linspace(0.0, 1.0, 128, dtype=np.float32)
        prof = collect_profile(region, {"n": 128}, {"t": 0.9}, arrays=arrays)

        static = extract_loadout(region, paper_trip_abstraction)
        profiled = profiled_loadout(region, prof, {"n": 128})
        # 50% abstraction charges half the guarded store; the profile knows
        # only ~10% of elements exceed 0.9
        assert static.store_insts == pytest.approx(0.5)
        assert profiled.store_insts == pytest.approx(0.1, abs=0.03)

    def test_profiled_loadout_counts_scale(self):
        region = build_rowwise()
        prof = collect_profile(region, {"n": 16})
        lo = profiled_loadout(region, prof, {"n": 1024})
        assert lo.load_insts == 1024  # runtime value drives the count
