"""Unit tests for feature extraction, trip abstractions and the attribute DB."""

import pytest

from repro.analysis import (
    PAPER_LOOP_TRIPS,
    ProgramAttributeDatabase,
    extract_loadout,
    hybrid_trips,
    paper_trip_abstraction,
    runtime_trips,
)
from repro.ir import Region, cmp, memory_accesses
from repro.symbolic import EvalError

from .kernels import build_gemm, build_rowwise, build_vecadd


class TestTripFunctions:
    def test_paper_abstraction_is_128(self):
        r = build_gemm()
        loop = r.body[0].body[0]  # the j loop
        assert paper_trip_abstraction(loop) == PAPER_LOOP_TRIPS == 128

    def test_runtime_trips(self):
        r = build_gemm()
        j_loop = r.body[0].body[0]
        assert runtime_trips({"nj": 1100})(j_loop) == 1100.0

    def test_runtime_trips_missing_raises(self):
        r = build_gemm()
        j_loop = r.body[0].body[0]
        with pytest.raises(EvalError):
            runtime_trips({})(j_loop)

    def test_hybrid_falls_back(self):
        r = build_gemm()
        j_loop = r.body[0].body[0]
        assert hybrid_trips({})(j_loop) == 128.0
        assert hybrid_trips({"nj": 9600})(j_loop) == 9600.0


class TestLoadout:
    def test_vecadd_counts(self):
        lo = extract_loadout(build_vecadd(), paper_trip_abstraction)
        assert lo.load_insts == 2
        assert lo.store_insts == 1
        assert lo.fp_insts == 1
        assert lo.mem_insts == 3

    def test_rowwise_scales_with_trips(self):
        lo128 = extract_loadout(build_rowwise(), paper_trip_abstraction)
        lo_rt = extract_loadout(build_rowwise(), runtime_trips({"n": 1024}))
        assert lo_rt.load_insts == 1024
        assert lo128.load_insts == 128
        # one store of y[i] per work item regardless of trips
        assert lo128.store_insts == lo_rt.store_insts == 1

    def test_gemm_counts_under_abstraction(self):
        lo = extract_loadout(build_gemm(), paper_trip_abstraction)
        # j loop (128) x k loop (128): 2 loads per k-iter
        assert lo.load_insts == pytest.approx(128 * 128 * 2 + 128)  # + C load
        assert lo.store_insts == 128
        # 2 fp (mul+mul... fused counting: alpha*A*B = 2 muls + 1 add) per k
        assert lo.fp_insts > 128 * 128 * 2

    def test_branch_weighting(self):
        r = Region("cond")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.0)):
                r.store(A[i], 0.0)
        lo = extract_loadout(r, paper_trip_abstraction)
        # the guarded store counts at probability 0.5
        assert lo.store_insts == 0.5
        assert lo.branch_insts == 1.0

    def test_access_weights_align_with_ipda_order(self):
        from repro.ipda import analyze_region

        r = build_gemm()
        lo = extract_loadout(r, paper_trip_abstraction)
        accesses = memory_accesses(r)
        ipda = analyze_region(r)
        assert len(lo.access_weights) == len(accesses) == len(ipda.accesses)
        for w, acc in zip(lo.access_weights, accesses):
            assert w.array_name == acc.array.name
            assert w.is_store == acc.is_store

    def test_arithmetic_intensity_finite(self):
        lo = extract_loadout(build_gemm(), paper_trip_abstraction)
        ai = lo.arithmetic_intensity()
        assert 0 < ai < 10

    def test_comp_includes_sfu_and_branches(self):
        from repro.ir import sqrt

        r = Region("s")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i], sqrt(A[i]))
        lo = extract_loadout(r, paper_trip_abstraction)
        assert lo.sfu_insts == 1
        assert lo.comp_insts >= lo.sfu_insts


class TestAttributeDatabase:
    def test_compile_and_lookup(self):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_gemm())
        assert db.lookup("gemm") is attrs
        assert "gemm" in db
        assert len(db) == 1

    def test_duplicate_compile_rejected(self):
        db = ProgramAttributeDatabase()
        db.compile_region(build_gemm())
        with pytest.raises(KeyError):
            db.compile_region(build_gemm())

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            ProgramAttributeDatabase().lookup("nope")

    def test_compile_validates(self):
        db = ProgramAttributeDatabase()
        r = Region("seq")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.loop("i", n) as i:  # not parallel: invalid region
            r.store(A[i], 0.0)
        with pytest.raises(ValueError):
            db.compile_region(r)

    def test_bind_completes_record(self):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_gemm())
        env = {"ni": 1100, "nj": 1100, "nk": 1100}
        bound = attrs.bind(env)
        assert bound.parallel_iterations == 1100
        assert bound.bytes_to_device == 3 * 1100 * 1100 * 4
        assert bound.bytes_to_host == 1100 * 1100 * 4
        # runtime loadout uses actual inner trips
        assert bound.loadout.load_insts == pytest.approx(1100 * 1100 * 2 + 1100)

    def test_bind_requires_parallel_extent(self):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_gemm())
        with pytest.raises(KeyError):
            attrs.bind({"nj": 1100, "nk": 1100})  # ni missing

    def test_static_loadout_uses_abstraction(self):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_gemm())
        assert attrs.static_loadout.store_insts == 128

    def test_region_names_sorted(self):
        db = ProgramAttributeDatabase()
        db.compile_region(build_vecadd())
        db.compile_region(build_gemm())
        assert db.region_names() == ["gemm", "vecadd"]
