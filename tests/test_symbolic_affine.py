"""Unit + property tests for affine decomposition (the IPDA substrate)."""

import pytest
from hypothesis import given, strategies as st

from repro.symbolic import (
    Const,
    NonAffineError,
    Sym,
    decompose_affine,
)


class TestDecompose:
    def test_simple_var(self):
        form = decompose_affine(Sym("i"), {"i"})
        assert form.coefficient("i") == Const(1)
        assert form.const == Const(0)

    def test_constant_only(self):
        form = decompose_affine(Const(7), {"i"})
        assert form.coeffs == {}
        assert form.const == Const(7)

    def test_row_major_2d(self):
        # A[i][j] with row length n: flat = i*n + j
        i, j, n = Sym("i"), Sym("j"), Sym("n")
        form = decompose_affine(i * n + j, {"i", "j"})
        assert form.coefficient("i") == n
        assert form.coefficient("j") == Const(1)

    def test_symbolic_coefficient_survives(self):
        # The paper's A[max * a] example: coefficient of `a` is [max].
        a, mx = Sym("a"), Sym("max")
        form = decompose_affine(mx * a, {"a"})
        assert form.coefficient("a") == mx
        assert form.free_symbols() == {"max"}

    def test_offset_const(self):
        i = Sym("i")
        form = decompose_affine(i + 5, {"i"})
        assert form.const == Const(5)

    def test_param_goes_to_const(self):
        i, n = Sym("i"), Sym("n")
        form = decompose_affine(i + n, {"i"})
        assert form.coefficient("i") == Const(1)
        assert form.const == n

    def test_zero_coefficient_dropped(self):
        i = Sym("i")
        form = decompose_affine(i * 0 + 3, {"i"})
        assert "i" not in form.coeffs

    def test_nonlinear_raises(self):
        i, j = Sym("i"), Sym("j")
        with pytest.raises(NonAffineError):
            decompose_affine(i * j, {"i", "j"})

    def test_var_under_floordiv_raises(self):
        i = Sym("i")
        with pytest.raises(NonAffineError):
            decompose_affine(i // 2, {"i"})

    def test_floordiv_of_params_ok(self):
        i, n = Sym("i"), Sym("n")
        form = decompose_affine(i * (n // 2), {"i"})
        assert form.coefficient("i") == n // 2

    def test_collapsed_2d_conv_index(self):
        # (i+1)*n + (j+1): typical stencil interior index
        i, j, n = Sym("i"), Sym("j"), Sym("n")
        form = decompose_affine((i + 1) * n + (j + 1), {"i", "j"})
        assert form.coefficient("i") == n
        assert form.coefficient("j") == Const(1)
        assert form.const == n + 1

    def test_to_expr_round_trip_evaluates_equal(self):
        i, j, n = Sym("i"), Sym("j"), Sym("n")
        e = i * n + j * 4 + 7
        form = decompose_affine(e, {"i", "j"})
        env = {"i": 3, "j": 5, "n": 100}
        assert form.to_expr().evaluate(env) == e.evaluate(env)

    def test_affine_form_evaluate(self):
        i, n = Sym("i"), Sym("n")
        form = decompose_affine(i * n + 2, {"i"})
        assert form.evaluate({"i": 3, "n": 10}) == 32


@given(
    ci=st.integers(-50, 50),
    cj=st.integers(-50, 50),
    const=st.integers(-1000, 1000),
    i=st.integers(0, 100),
    j=st.integers(0, 100),
)
def test_affine_decomposition_is_faithful(ci, cj, const, i, j):
    """Decomposing any integer affine form recovers exact coefficients."""
    I, J = Sym("i"), Sym("j")
    expr = I * ci + J * cj + const
    form = decompose_affine(expr, {"i", "j"})
    env = {"i": i, "j": j}
    assert form.evaluate(env) == ci * i + cj * j + const
    # coefficient of the parallel variable is the inter-thread stride
    got_ci = form.coefficient("i").constant_value()
    assert got_ci == ci or (ci == 0 and got_ci == 0)


@given(
    n=st.integers(1, 10_000),
    coeff=st.integers(-8, 8),
    base=st.integers(0, 100),
)
def test_symbolic_coefficient_binds_at_runtime(n, coeff, base):
    """A symbolic stride like the paper's [max] evaluates correctly later."""
    a, mx = Sym("a"), Sym("max")
    form = decompose_affine(mx * coeff * a + base, {"a"})
    stride = form.coefficient("a")
    assert stride.evaluate({"max": n}) == coeff * n
