"""Unit + property tests for the reuse-distance locality engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.locality import (
    AccessSpec,
    CacheLevel,
    LoopExtent,
    MemoryHierarchy,
    analyze_access,
    group_accesses,
)

MEM = MemoryHierarchy(
    levels=(
        CacheLevel("L1", 32 * 1024, 4),
        CacheLevel("L2", 512 * 1024, 12),
        CacheLevel("L3", 8 * 1024 * 1024, 30),
    ),
    dram_latency_cycles=300,
    line_bytes=128,
)


def spec(loops, *, elem=4, count=None, array=10**9, store=False):
    loops = tuple(LoopExtent(s, t) for s, t in loops)
    if count is None:
        count = 1.0
        for lp in loops:
            count *= lp.trips
    return AccessSpec(
        elem_bytes=elem,
        loops=loops,
        dynamic_count=count,
        array_bytes=array,
        is_store=store,
    )


class TestHierarchy:
    def test_level_holding(self):
        assert MEM.level_holding(1024).name == "L1"
        assert MEM.level_holding(10**6).name == "L3"
        assert MEM.level_holding(10**9) is None

    def test_latency_for_footprint(self):
        assert MEM.latency_for_footprint(1024) == 4
        assert MEM.latency_for_footprint(10**9) == 300

    def test_levels_must_be_ordered(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                levels=(CacheLevel("big", 100, 1), CacheLevel("small", 10, 2)),
                dram_latency_cycles=100,
                line_bytes=64,
            )

    def test_needs_a_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(levels=(), dram_latency_cycles=100, line_bytes=64)


class TestAnalyzeAccess:
    def test_loop_invariant_is_l1(self):
        loc = analyze_access(spec([(0, 1000)], array=4096), MEM)
        assert loc.avg_latency_cycles < 5
        assert loc.cold_fraction < 0.01

    def test_unit_stride_stream_spatial(self):
        # big array, single stride-1 sweep beyond every cache: 1/32 of f32
        # accesses miss to DRAM
        n = 10**7  # 40 MB sweep > 8 MB L3
        loc = analyze_access(spec([(1, n)]), MEM)
        assert loc.cold_fraction == pytest.approx(1 / 32, rel=0.01)
        assert loc.source == "DRAM"
        assert loc.dram_bytes == pytest.approx(n / 32 * 128, rel=0.01)

    def test_unit_stride_sweep_fitting_l3_is_warm(self):
        # a 4 MB sweep fits the 8 MB L3: warm across kernel repetitions
        loc = analyze_access(spec([(1, 10**6)]), MEM)
        assert loc.source == "L3"
        assert loc.dram_bytes == 0.0

    def test_column_walk_with_repeat_hits_l3(self):
        # stride-N sweep of 1.2 MB, repeated by a zero-stride outer loop
        loc = analyze_access(spec([(9600, 9600), (0, 100)]), MEM)
        assert loc.repeat_level == "L3"
        assert loc.repeat_fraction > 0.9
        assert loc.cold_fraction == pytest.approx(0.01, rel=0.05)

    def test_small_sweep_repeats_in_l1(self):
        loc = analyze_access(spec([(1, 100), (0, 1000)], array=4096), MEM)
        assert loc.avg_latency_cycles < 5

    def test_quasi_repeat_from_sub_line_stride(self):
        # column sweep; outer loop advances one element (< line): the same
        # lines are revisited line/elem = 32 times
        loc = analyze_access(spec([(9600, 9600), (1, 9600)]), MEM)
        assert loc.cold_fraction == pytest.approx(1 / 32, rel=0.05)

    def test_streaming_outer_kills_reuse(self):
        # outer loop jumps a full row: every sweep is fresh data
        loc = analyze_access(spec([(1, 9600), (9600, 9600)]), MEM)
        assert loc.repeat_fraction == 0.0
        assert loc.source == "DRAM"

    def test_partial_fit_spills(self):
        # sweep of ~12 MB against an 8 MB L3: partial repeat credit
        loc = analyze_access(spec([(9600, 96000), (0, 100)]), MEM)
        assert 0 < loc.repeat_fraction < 1
        assert loc.cold_fraction > 1.0 / 100

    def test_oversized_sweep_gets_no_credit(self):
        # sweep 40x the largest cache: repeats are re-streams
        loc = analyze_access(spec([(9600, 2_600_000), (0, 100)]), MEM)
        assert loc.repeat_fraction == 0.0
        assert loc.cold_fraction == 1.0

    def test_store_doubles_dram_traffic(self):
        ld = analyze_access(spec([(1, 10**6)]), MEM)
        stt = analyze_access(spec([(1, 10**6)], store=True), MEM)
        assert stt.dram_bytes == pytest.approx(2 * ld.dram_bytes)

    def test_non_affine_is_worst_case(self):
        loc = analyze_access(spec([(None, 1000)]), MEM)
        assert loc.avg_latency_cycles == MEM.dram_latency_cycles
        assert loc.cold_fraction == 1.0

    def test_warm_small_array_has_no_dram_traffic(self):
        # array fits L2: cold misses come from the warm cache, not DRAM
        loc = analyze_access(spec([(1, 1000)], array=100 * 1024), MEM)
        assert loc.dram_bytes == 0.0
        assert loc.source in ("L2", "L3", "L1")

    @given(
        stride=st.sampled_from([1, 2, 8, 32, 100, 9600]),
        trips=st.integers(2, 100_000),
    )
    def test_fractions_form_a_distribution(self, stride, trips):
        loc = analyze_access(spec([(stride, trips)]), MEM)
        assert 0.0 <= loc.cold_fraction <= 1.0
        assert 0.0 <= loc.repeat_fraction <= 1.0
        assert loc.cold_fraction + loc.repeat_fraction <= 1.0 + 1e-9
        assert loc.l1_fraction >= -1e-9

    @given(trips=st.integers(64, 100_000))
    def test_latency_bounded_by_hierarchy(self, trips):
        loc = analyze_access(spec([(1, trips), (0, 10)]), MEM)
        assert MEM.l1_latency <= loc.avg_latency_cycles <= MEM.dram_latency_cycles


class TestGrouping:
    def test_same_keys_group(self):
        groups = group_accesses([("A", "s1"), ("A", "s1"), ("B", "s1")])
        assert sorted(map(sorted, groups)) == [[0, 1], [2]]

    def test_distinct_keys_stay_apart(self):
        groups = group_accesses([("A", "x"), ("A", "y")])
        assert len(groups) == 2

    def test_empty(self):
        assert group_accesses([]) == []
