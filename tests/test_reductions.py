"""Tests for band-wide reductions (OpenMP reduction clauses, Reduction_c)."""

import numpy as np
import pytest

from repro.analysis import ProgramAttributeDatabase, nest_trips, extract_loadout
from repro.ir import (
    ReduceStore,
    Region,
    count_reductions,
    parse_region,
    region_to_text,
    validate_region,
)
from repro.machines import PLATFORM_P9_V100, POWER9, TESLA_V100
from repro.models import predict_cpu_time, predict_both
from repro.runtime import ModelGuided, OffloadingRuntime
from repro.sim import allocate_arrays, execute_region, simulate_cpu, simulate_gpu_kernel


def build_dot() -> Region:
    """result[0] = sum_i x[i]*w[i] — the canonical reduction kernel."""
    r = Region("dot")
    n = r.param("n")
    x = r.array("x", (n,))
    w = r.array("w", (n,))
    out = r.array("result", (1,), inout=True)
    with r.parallel_loop("i", n) as i:
        r.reduce_store(out[0], x[i] * w[i])
    return r


def build_row_sums_reduction() -> Region:
    """total[0] += per-row dot products (reduction below an inner loop)."""
    r = Region("rowdot")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    v = r.array("v", (m,))
    out = r.array("total", (1,), inout=True)
    with r.parallel_loop("i", n) as i:
        acc = r.local("acc", 0.0)
        with r.loop("j", m) as j:
            r.assign(acc, acc + A[i, j] * v[j])
        r.reduce_store(out[0], acc)
    return r


class TestIR:
    def test_validates(self):
        validate_region(build_dot())
        validate_region(build_row_sums_reduction())

    def test_count_reductions(self):
        assert count_reductions(build_dot()) == 1
        from tests.kernels import build_gemm

        assert count_reductions(build_gemm()) == 0

    def test_band_dependent_target_rejected(self):
        r = Region("bad")
        n = r.param("n")
        x = r.array("x", (n,))
        out = r.array("out", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with pytest.raises(ValueError):
                r.reduce_store(out[i], x[i])
            r.store(out[i], x[i])  # keep the region valid

    def test_unsupported_operator_rejected(self):
        r = Region("bad2")
        n = r.param("n")
        x = r.array("x", (n,))
        out = r.array("out", (1,), inout=True)
        with r.parallel_loop("i", n) as i:
            with pytest.raises(ValueError):
                r.reduce_store(out[0], x[i], op="xor")
            r.reduce_store(out[0], x[i], op="max")

    def test_roundtrip_through_text(self):
        region = build_dot()
        text = region_to_text(region)
        assert "reduce(add)" in text
        parsed = parse_region(text)
        validate_region(parsed)
        assert region_to_text(parsed) == text
        assert count_reductions(parsed) == 1


class TestExecution:
    def test_dot_matches_numpy(self):
        region = build_dot()
        env = {"n": 64}
        arrays = allocate_arrays(region, env, seed=9)
        arrays["result"][:] = 0.0  # reduction combines with the initial value
        execute_region(region, arrays, {}, env)
        assert arrays["result"][0] == pytest.approx(
            float(np.dot(arrays["x"].astype(np.float64), arrays["w"])), rel=1e-4
        )

    def test_max_reduction(self):
        r = Region("maxred")
        n = r.param("n")
        x = r.array("x", (n,))
        out = r.array("out", (1,), inout=True)
        with r.parallel_loop("i", n) as i:
            r.reduce_store(out[0], x[i], op="max")
        arrays = allocate_arrays(r, {"n": 32}, seed=2)
        execute_region(r, arrays, {}, {"n": 32})
        assert arrays["out"][0] == pytest.approx(arrays["x"].max())

    def test_nested_reduction_matches_numpy(self):
        region = build_row_sums_reduction()
        env = {"n": 8, "m": 12}
        arrays = allocate_arrays(region, env, seed=3)
        arrays["total"][:] = 0.0
        execute_region(region, arrays, {}, env)
        expect = float(
            (arrays["A"].astype(np.float64) @ arrays["v"].astype(np.float64)).sum()
        )
        assert arrays["total"][0] == pytest.approx(expect, rel=1e-3)


class TestModelling:
    def test_loadout_counts_combine_op(self):
        region = build_dot()
        lo = extract_loadout(region, nest_trips(region, {"n": 100}))
        assert lo.fp_insts >= 2  # the multiply + the reduce combine
        assert lo.store_insts == 1

    def test_reduction_c_term_appears(self):
        region = build_dot()
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind({"n": 100_000})
        pred = predict_cpu_time(
            region, bound.loadout, bound.parallel_iterations, POWER9, env={"n": 100_000}
        )
        assert pred.reduction_cycles > 0
        assert "Reduction_c" in pred.breakdown()
        # ceil(log2(160)) = 8 combining steps
        assert pred.reduction_cycles == pytest.approx(
            8 * POWER9.reduction_step_cycles
        )

    def test_non_reduction_kernels_pay_nothing(self):
        from tests.kernels import build_vecadd

        region = build_vecadd()
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind({"n": 1000})
        pred = predict_cpu_time(
            region, bound.loadout, bound.parallel_iterations, POWER9, env={"n": 1000}
        )
        assert pred.reduction_cycles == 0.0

    def test_simulators_accept_reductions(self):
        region = build_dot()
        env = {"n": 1 << 22}
        cpu = simulate_cpu(region, POWER9, env)
        gpu = simulate_gpu_kernel(region, TESLA_V100, env)
        assert cpu.seconds > 0 and gpu.seconds > 0

    def test_end_to_end_selection(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        region = build_row_sums_reduction()
        rt.compile_region(region)
        rec = rt.launch("rowdot", {"n": 4096, "m": 4096})
        assert rec.target in ("cpu", "gpu")
        assert rec.prediction is not None

    def test_reduction_cost_visible_on_gpu_model(self):
        import dataclasses

        region = build_dot()
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind({"n": 1 << 22})
        with_red = predict_both(bound, PLATFORM_P9_V100)
        # strip the ReduceStore and compare: the kernel estimate must drop
        from repro.codegen import plan_gpu_launch
        from repro.models import predict_gpu_time

        plan = plan_gpu_launch(bound.parallel_iterations, TESLA_V100)
        without = predict_gpu_time(
            "dot", bound.loadout, bound.ipda, plan, TESLA_V100,
            PLATFORM_P9_V100.bus, bound.bytes_to_device, bound.bytes_to_host,
            num_reductions=0,
        )
        assert with_red.gpu.exec_cycles > without.exec_cycles
