"""Unit + property tests for IPDA stride analysis and coalescing math."""

import pytest
from hypothesis import given, strategies as st

from repro.ipda import (
    CoalescingClass,
    analyze_region,
    classify_stride,
    transactions_per_warp_access,
)
from repro.ir import Region
from repro.symbolic import Const, Sym

from .kernels import (
    build_colwise,
    build_gemm,
    build_rowwise,
    build_strided_store,
    build_vecadd,
)


class TestTransactions:
    def test_coalesced_f32_is_4_sectors(self):
        # 32 threads x 4B contiguous = 128B = 4 sectors of 32B
        assert transactions_per_warp_access(4, 4) == 4

    def test_uniform_access_is_one(self):
        assert transactions_per_warp_access(0, 4) == 1

    def test_fully_strided_is_32(self):
        # stride of 128B >> sector: every lane its own sector
        assert transactions_per_warp_access(128, 4) == 32

    def test_partial_stride_two(self):
        # stride 8B, f32: warp spans 256B minus gaps -> 8 sectors
        assert transactions_per_warp_access(8, 4) == 8

    def test_f64_coalesced_is_8_sectors(self):
        assert transactions_per_warp_access(8, 8) == 8

    def test_negative_stride_same_as_positive(self):
        assert transactions_per_warp_access(-4, 4) == transactions_per_warp_access(4, 4)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            transactions_per_warp_access(4, 0)

    @given(stride=st.integers(0, 4096), elem=st.sampled_from([4, 8]))
    def test_transactions_bounded(self, stride, elem):
        txn = transactions_per_warp_access(stride, elem)
        # at least 1 sector; at most one sector span per lane
        assert 1 <= txn <= 32 * (1 + (elem - 1) // 32 + 1)

    @given(stride=st.integers(33, 4096))
    def test_large_stride_at_least_one_txn_per_lane(self, stride):
        # once stride exceeds a sector, each 4B lane touches its own
        # sector(s); lanes straddling a boundary may add one more
        assert 32 <= transactions_per_warp_access(stride, 4) <= 64

    @given(k=st.integers(2, 128))
    def test_sector_multiple_stride_exactly_32(self, k):
        assert transactions_per_warp_access(32 * k, 4) == 32


class TestClassify:
    def test_unit_stride(self):
        assert classify_stride(1, 4) is CoalescingClass.COALESCED

    def test_negative_unit_stride(self):
        assert classify_stride(-1, 4) is CoalescingClass.COALESCED

    def test_zero_stride(self):
        assert classify_stride(0, 4) is CoalescingClass.UNIFORM

    def test_small_stride_partial(self):
        assert classify_stride(2, 4) is CoalescingClass.PARTIAL

    def test_large_stride_uncoalesced(self):
        assert classify_stride(1100, 4) is CoalescingClass.UNCOALESCED

    def test_none_is_unknown(self):
        assert classify_stride(None, 4) is CoalescingClass.UNKNOWN

    def test_coalesced_flag(self):
        assert CoalescingClass.COALESCED.is_coalesced
        assert CoalescingClass.UNIFORM.is_coalesced
        assert not CoalescingClass.UNCOALESCED.is_coalesced


class TestPaperExample:
    """Section IV.C: IPD_th(A[max * a]) == [max]."""

    def test_symbolic_stride_is_max(self):
        res = analyze_region(build_strided_store())
        (acc,) = res.accesses
        assert acc.thread_stride == Sym("max")

    def test_free_symbols_reported(self):
        res = analyze_region(build_strided_store())
        assert res.free_symbols() == {"max"}

    def test_runtime_binding_uncoalesced(self):
        res = analyze_region(build_strided_store())
        bound = res.bind({"max": 1100})
        (b,) = bound.accesses
        assert b.thread_stride_elems == 1100
        assert b.coalescing is CoalescingClass.UNCOALESCED
        assert b.transactions_per_access == 32

    def test_runtime_binding_coalesced_when_max_is_one(self):
        res = analyze_region(build_strided_store())
        bound = res.bind({"max": 1})
        (b,) = bound.accesses
        assert b.coalescing is CoalescingClass.COALESCED


class TestRegionAnalysis:
    def test_vecadd_all_coalesced(self):
        bound = analyze_region(build_vecadd()).bind({"n": 1000})
        assert bound.counts() == (3, 0)
        assert bound.coalesced_fraction() == 1.0

    def test_colwise_coalesced_on_gpu(self):
        # thread j, access A[i][j]: inter-thread stride 1
        bound = analyze_region(build_colwise()).bind({"n": 1000})
        a_access = [b for b in bound.accesses if b.stride.access.array.name == "A"]
        assert all(b.coalescing is CoalescingClass.COALESCED for b in a_access)

    def test_rowwise_uncoalesced_on_gpu(self):
        # thread i, access A[i][j]: inter-thread stride n
        bound = analyze_region(build_rowwise()).bind({"n": 1000})
        a_access = [b for b in bound.accesses if b.stride.access.array.name == "A"]
        assert all(b.coalescing is CoalescingClass.UNCOALESCED for b in a_access)

    def test_rowwise_inner_loop_stride_is_one(self):
        res = analyze_region(build_rowwise())
        a = [x for x in res.accesses if x.access.array.name == "A"][0]
        assert a.innermost_sequential_stride() == Const(1)

    def test_gemm_strides(self):
        res = analyze_region(build_gemm())
        strides = {}
        for a in res.accesses:
            strides.setdefault(a.access.array.name, []).append(a.thread_stride)
        # A[i][k]: thread stride nk; B[k][j]: 0 (uniform across i threads)
        assert strides["A"] == [Sym("nk")]
        assert strides["B"] == [Const(0)]
        # C[i][j] load + store: stride nj
        assert strides["C"] == [Sym("nj"), Sym("nj")]

    def test_gemm_binding_counts(self):
        bound = analyze_region(build_gemm()).bind({"ni": 64, "nj": 64, "nk": 64})
        coal, uncoal = bound.counts()
        assert coal == 1  # the uniform B access
        assert uncoal == 3

    def test_false_sharing_flagged_for_small_stride_store(self):
        r = Region("fs")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i], 1.0)
        bound = analyze_region(r).bind({"n": 100}, cacheline_bytes=128)
        (b,) = bound.accesses
        assert b.false_sharing_risk  # 4B-apart stores share a 128B line

    def test_collapse2_band_inner_var_drives_stride(self):
        r = Region("c2")
        n, m = r.param_tuple("n", "m")
        A = r.array("A", (n, m), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", m) as j:
                r.store(A[i, j], 0.0)
        res = analyze_region(r)
        assert res.band_vars == ("i", "j")
        (acc,) = res.accesses
        assert acc.thread_stride == Const(1)  # coeff of j

    def test_mean_transactions(self):
        bound = analyze_region(build_vecadd()).bind({"n": 100})
        assert bound.mean_transactions() == 4.0


class TestEdgeCases:
    """Corner cases of the inter-thread stride model."""

    def _collapse2_transposed(self):
        r = Region("c2t")
        n, m = r.param_tuple("n", "m")
        A = r.array("A", (m, n), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", m) as j:
                r.store(A[j, i], 0.0)
        return r

    def test_collapse2_transposed_stride_is_row_length(self):
        # flat index j*n + i: adjacent threads step j, so stride is n
        res = analyze_region(self._collapse2_transposed())
        (acc,) = res.accesses
        assert acc.thread_stride == Sym("n")

    def test_collapse_boundary_wraparound_ignored(self):
        # With m=4 the lane pairs (i, m-1) -> (i+1, 0) wrap the collapse
        # boundary and are NOT unit-stride, but IPDA models the common
        # case: the innermost band coefficient still classifies the
        # access, exactly as a warp mostly made of interior pairs behaves.
        r = Region("c2wrap")
        n, m = r.param_tuple("n", "m")
        A = r.array("A", (n, m), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", m) as j:
                r.store(A[i, j], 0.0)
        res = analyze_region(r)
        (acc,) = res.accesses
        assert acc.thread_stride == Const(1)
        bound = res.bind({"n": 64, "m": 4})
        assert bound.accesses[0].coalescing is CoalescingClass.COALESCED

    def test_thread_invariant_access_is_uniform(self):
        # x[k] never mentions the band variable: stride 0, one broadcast
        r = Region("uniform")
        n = r.param("n")
        x = r.array("x", (n,))
        y = r.array("y", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            acc = r.local("acc", 0.0)
            with r.loop("k", n) as k:
                r.assign(acc, acc + x[k])
            r.store(y[i], acc)
        res = analyze_region(r)
        x_acc = [a for a in res.accesses if a.access.array.name == "x"][0]
        assert x_acc.thread_stride == Const(0)
        bound = res.bind({"n": 1000})
        x_bound = [
            b for b in bound.accesses if b.stride.access.array.name == "x"
        ][0]
        assert x_bound.coalescing is CoalescingClass.UNIFORM
        assert x_bound.transactions_per_access == 1

    def test_triangular_inner_bounds(self):
        # for j2 in [j1, m): the triangular lower bound must not disturb
        # the band-coefficient stride (m for A[j1][j2], 1 innermost)
        r = Region("tri")
        m = r.param("m")
        A = r.array("A", (m, m), output=True)
        with r.parallel_loop("j1", m) as j1:
            with r.loop("j2", m - j1.sym, start=j1) as j2:
                r.store(A[j1, j2], 1.0)
        res = analyze_region(r)
        (acc,) = res.accesses
        assert acc.thread_stride == Sym("m")
        assert acc.innermost_sequential_stride() == Const(1)
        bound = res.bind({"m": 512})
        assert bound.accesses[0].coalescing is CoalescingClass.UNCOALESCED


@given(n=st.integers(2, 10_000))
def test_stride_binding_matches_direct_evaluation(n):
    """Property: bound stride equals evaluating the symbolic stride."""
    res = analyze_region(build_strided_store())
    (acc,) = res.accesses
    bound = res.bind({"max": n})
    assert bound.accesses[0].thread_stride_elems == acc.thread_stride.evaluate(
        {"max": n}
    )
