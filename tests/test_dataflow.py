"""Tests for the array-liveness / transfer-direction dataflow analysis.

Covers the :mod:`repro.ir.dataflow` classifier (directions, coverage
rules, symbolic byte bounds), the MAP001–MAP005 lint passes, the
transfer-sizing hardening, the opt-in ``inferred_transfers`` database
mode with its bit-identity guarantee, and the ``repro-paper transfers``
/ ``lint --fail-on`` CLI surfaces.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.cli import build_parser, main
from repro.ir import Region, cmp
from repro.ir.dataflow import Direction, analyze_transfers
from repro.ir.region import evaluate_transfer_bytes
from repro.lint import (
    LintGate,
    Severity,
    default_pass_manager,
    lint_region,
    reports_to_json,
)
from repro.machines import platform_by_name
from repro.models.transfer import estimate_transfer
from repro.polybench import all_kernel_cases
from repro.runtime import OffloadingRuntime

from .kernels import (
    build_dead_map,
    build_gemm,
    build_overmapped_input,
    build_temp_mapped_both_ways,
    build_unanalysable_direction,
    build_undermapped_output,
    build_vecadd,
)

GOLDEN_LINT = Path(__file__).parent / "golden" / "lint_map.json"

MAP_FIXTURES = (
    (build_undermapped_output, "MAP001"),
    (build_overmapped_input, "MAP002"),
    (build_temp_mapped_both_ways, "MAP003"),
    (build_dead_map, "MAP004"),
    (build_unanalysable_direction, "MAP005"),
)


class TestDirectionClassification:
    def test_vecadd_directions(self):
        df = analyze_transfers(build_vecadd())
        assert df.direction_of("x") is Direction.IN
        assert df.direction_of("y") is Direction.IN
        assert df.direction_of("z") is Direction.OUT

    def test_gemm_inout(self):
        df = analyze_transfers(build_gemm())
        assert df.direction_of("A") is Direction.IN
        assert df.direction_of("B") is Direction.IN
        # C is read (beta*C) before being overwritten
        assert df.direction_of("C") is Direction.INOUT

    def test_undermapped_output_is_out(self):
        info = analyze_transfers(build_undermapped_output())["z"]
        assert info.direction is Direction.OUT
        assert info.writes > 0 and info.exposed_reads == 0
        # declared input-only, so the inferred copy-back is zero — the
        # value is lost, which is exactly what MAP001 flags
        assert info.copy_out.constant_value() == 0

    def test_dead_array(self):
        info = analyze_transfers(build_dead_map())["unused"]
        assert info.direction is Direction.DEAD
        assert info.reads == info.writes == 0
        assert info.copy_in.constant_value() == 0
        assert info.copy_out.constant_value() == 0

    def test_unknown_falls_back_to_declared(self):
        df = analyze_transfers(build_unanalysable_direction())
        info = df["x"]
        assert info.direction is Direction.UNKNOWN
        assert info.unanalysable
        # declared input-only map is trusted as-is
        assert info.copy_in.free_symbols() == {"n"}
        assert info.copy_out.constant_value() == 0

    def test_temp_pattern_flag(self):
        info = analyze_transfers(build_temp_mapped_both_ways())["W"]
        assert info.temp_pattern
        assert info.exposed_reads == 0 and info.covered_reads > 0
        # declared tofrom: the copy-in is dropped, the copy-back kept
        # (the analysis cannot see past the region's end)
        assert info.copy_in.constant_value() == 0
        assert info.copy_out.free_symbols() == {"n"}


class TestCoverageRules:
    def _scratch_region(self, **w_kwargs) -> Region:
        """y[i,:] = f(x[i,:]) via a per-thread row of W (device scratch)."""
        r = Region("rowscratch")
        n, m = r.param_tuple("n", "m")
        x = r.array("x", (n, m))
        W = r.array("W", (n, m), **w_kwargs)
        y = r.array("y", (n, m), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", m) as j:
                r.store(W[i, j], x[i, j] * 2.0)
            with r.loop("j2", m) as j2:
                r.store(y[i, j2], W[i, j2] + 1.0)
        return r

    def test_row_scratch_is_temp(self):
        df = analyze_transfers(self._scratch_region())
        assert df.direction_of("W") is Direction.TEMP

    def test_partial_first_write_stays_exposed(self):
        r = Region("partial")
        n, m = r.param_tuple("n", "m")
        x = r.array("x", (n, m))
        W = r.array("W", (n, m))
        y = r.array("y", (n, m), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", m, start=1) as j:  # element 0 never written
                r.store(W[i, j], x[i, j])
            with r.loop("j2", m) as j2:
                r.store(y[i, j2], W[i, j2])
        info = analyze_transfers(r)["W"]
        assert info.direction is Direction.INOUT
        assert info.exposed_reads == 1

    def test_conditional_write_never_covers(self):
        r = Region("condw")
        n = r.param("n")
        x = r.array("x", (n,))
        W = r.array("W", (n,))
        y = r.array("y", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", x[i], 0.0)):
                r.store(W[i], x[i] * 2.0)
            r.store(y[i], W[i])
        info = analyze_transfers(r)["W"]
        assert info.direction is Direction.INOUT
        assert info.exposed_reads == 1

    def test_flattened_same_iteration_coverage(self):
        r = Region("flat")
        n, m = r.param_tuple("n", "m")
        x = r.array("x", (n * m,))
        W = r.array("W", (n * m,))
        y = r.array("y", (n * m,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", m) as j:
                flat = i.sym * m.sym + j.sym
                r.store(W[flat], x[flat])
                r.store(y[flat], W[flat] + 1.0)
        info = analyze_transfers(r)["W"]
        assert info.direction is Direction.TEMP
        # the (i,j) nest tiles the whole array contiguously
        assert info.fully_overwritten

    def test_sibling_subnest_flat_read_is_conservative(self):
        # Reading the flat row back from a *sibling* sub-nest is real
        # coverage, but the mixed-radix argument cannot see it; the
        # analysis must degrade toward "host value needed", never drop.
        r = Region("flat_sibling")
        n, m = r.param_tuple("n", "m")
        x = r.array("x", (n * m,))
        W = r.array("W", (n * m,))
        y = r.array("y", (n * m,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", m) as j:
                r.store(W[i.sym * m.sym + j.sym], x[i.sym * m.sym + j.sym])
            with r.loop("j2", m) as j2:
                r.store(y[i.sym * m.sym + j2.sym], W[i.sym * m.sym + j2.sym])
        assert analyze_transfers(r).direction_of("W") is Direction.INOUT

    def test_reduce_store_counts_as_exposed_read(self):
        r = Region("red")
        n = r.param("n")
        x = r.array("x", (n,))
        s = r.array("s", (1,), inout=True)
        with r.parallel_loop("i", n) as i:
            r.reduce_store(s[0], x[i])
        info = analyze_transfers(r)["s"]
        # the reduction combines with the incoming host value
        assert info.direction is Direction.INOUT
        assert info.exposed_reads == 1


class TestTransferSizing:
    def test_inferred_bytes_drop_wasted_directions(self):
        df = analyze_transfers(build_overmapped_input())
        env = {"n": 100}
        to_dev, to_host = df.transfer_bytes(env)
        # declared would move z both ways; inference drops its copy-in
        assert (to_dev, to_host) == (800, 400)
        declared = build_overmapped_input().transfer_bytes(env)
        assert declared == (1200, 400)

    def test_clean_region_matches_declared(self):
        region = build_vecadd()
        env = {"n": 64}
        assert analyze_transfers(region).transfer_bytes(env) == \
            region.transfer_bytes(env)

    def test_unbound_symbol_raises_keyerror_naming_region(self):
        with pytest.raises(KeyError, match=r"vecadd.*'x'.*\['n'\]"):
            build_vecadd().transfer_bytes({})

    def test_dataflow_bytes_share_the_hardening(self):
        with pytest.raises(KeyError, match="rowscratch"):
            df = analyze_transfers(TestCoverageRules()._scratch_region())
            df.transfer_bytes({"n": 4})  # m unbound

    def test_negative_extent_raises_valueerror(self):
        with pytest.raises(ValueError, match="negative"):
            build_vecadd().transfer_bytes({"n": -5})

    def test_evaluate_transfer_bytes_helper(self):
        from repro.symbolic import Sym

        nbytes = Sym("n") * 4
        assert evaluate_transfer_bytes("r", "a", nbytes, {"n": 8}) == 32
        with pytest.raises(ValueError, match=r"'a' transfer size is negative"):
            evaluate_transfer_bytes("r", "a", nbytes, {"n": -8})

    def test_estimate_transfer_rejects_negative_bytes(self):
        bus = platform_by_name("p9-v100").bus
        with pytest.raises(ValueError, match="negative transfer size"):
            estimate_transfer(-1, 0, bus)
        with pytest.raises(ValueError, match="to_host=-8"):
            estimate_transfer(0, -8, bus)


class TestMapLint:
    @pytest.mark.parametrize(
        "build,expected", MAP_FIXTURES, ids=lambda v: getattr(v, "__name__", v)
    )
    def test_fixture_fires_exactly_its_code(self, build, expected):
        report = lint_region(build())
        map_codes = {d.code for d in report if d.code.startswith("MAP")}
        assert map_codes == {expected}, report.render_text()

    def test_map001_is_the_only_map_error(self):
        severities = {}
        for build, code in MAP_FIXTURES:
            for d in lint_region(build()):
                if d.code.startswith("MAP"):
                    severities[code] = d.severity
        assert severities["MAP001"] is Severity.ERROR
        for code in ("MAP002", "MAP003", "MAP004", "MAP005"):
            assert severities[code] is Severity.WARNING

    def test_waste_priced_on_the_bus_with_env_and_platform(self):
        report = lint_region(
            build_dead_map(),
            env={"n": 1024},
            platform=platform_by_name("p9-v100"),
        )
        (diag,) = [d for d in report if d.code == "MAP004"]
        assert "bytes" in diag.message and "per launch" in diag.message

    @pytest.mark.parametrize(
        "case", all_kernel_cases("test"), ids=lambda c: c.name
    )
    def test_polybench_suite_is_map_clean(self, case):
        report = lint_region(
            case.region, env=case.env, platform=platform_by_name("p9-v100")
        )
        map_codes = [d.code for d in report if d.code.startswith("MAP")]
        assert not map_codes, report.render_text()

    def test_gate_blocks_map001(self):
        decision = LintGate(mode="host").decide(build_undermapped_output())
        assert decision is not None and decision.blocked
        assert "MAP001" in decision.codes

    def test_gate_ignores_map_warnings(self):
        assert LintGate(mode="host").decide(build_overmapped_input()) is None


class TestPassOrdering:
    def test_map_pass_registered_after_bounds(self):
        names = default_pass_manager().pass_names()
        assert "map-direction" in names
        assert names.index("map-direction") > names.index("bounds")

    def test_structural_errors_short_circuit_map_passes(self):
        r = Region("twoband")
        n = r.param("n")
        x = r.array("x", (n,))
        y = r.array("y", (n,))  # written but not mapped out: MAP001 bait
        with r.parallel_loop("i", n) as i:
            r.store(y[i], x[i])
        with r.parallel_loop("j", n) as j:
            r.store(y[j], x[j] * 2.0)
        report = lint_region(r)
        codes = {d.code for d in report}
        assert codes and all(c.startswith("STRUCT") for c in codes), codes


def test_lint_json_schema_matches_golden(request):
    reports = [lint_region(build()) for build, _ in MAP_FIXTURES]
    rendered = reports_to_json(reports) + "\n"
    if request.config.getoption("--update-golden"):
        GOLDEN_LINT.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_LINT.write_text(rendered)
        pytest.skip("golden lint report regenerated")
    assert GOLDEN_LINT.exists(), (
        "tests/golden/lint_map.json is missing; generate it with "
        "`pytest tests/test_dataflow.py --update-golden`"
    )
    assert json.loads(rendered) == json.loads(GOLDEN_LINT.read_text()), (
        "lint JSON schema or MAP diagnostics drifted from the golden "
        "snapshot (rerun with --update-golden if intentional)"
    )


class TestInferredTransfersMode:
    ENV = {"n": 1024}

    def test_bind_tightens_overmapped_region(self):
        declared_db = ProgramAttributeDatabase()
        inferred_db = ProgramAttributeDatabase(inferred_transfers=True)
        d = declared_db.compile_region(build_overmapped_input()).bind(self.ENV)
        region = build_overmapped_input()
        i = inferred_db.compile_region(region).bind(self.ENV)
        assert d.transfer_mode == "declared"
        assert i.transfer_mode == "inferred"
        assert d.bytes_to_device == 3 * 1024 * 4
        assert i.bytes_to_device == 2 * 1024 * 4
        assert d.bytes_to_host == i.bytes_to_host == 1024 * 4

    def test_default_mode_is_bit_identical_to_declared(self):
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_vecadd()).bind(self.ENV)
        assert bound.transfer_mode == "declared"
        assert (bound.bytes_to_device, bound.bytes_to_host) == \
            build_vecadd().transfer_bytes(self.ENV)

    def test_compile_always_records_dataflow(self):
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(build_vecadd())
        assert attrs.dataflow is not None
        assert attrs.dataflow.direction_of("z") is Direction.OUT

    def test_launch_records_transfer_provenance(self):
        plat = platform_by_name("p9-v100")
        plain = OffloadingRuntime(plat)
        inferred = OffloadingRuntime(
            plat, db=ProgramAttributeDatabase(inferred_transfers=True)
        )
        for rt in (plain, inferred):
            rt.compile_region(build_vecadd())
        a = plain.launch("vecadd", self.ENV)
        b = inferred.launch("vecadd", self.ENV)
        assert a.transfers is None
        assert b.transfers == "inferred"
        # vecadd's map is clean, so everything else is bit-identical
        assert a == dataclasses.replace(b, transfers=None)


class TestTransfersCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["transfers"])
        assert args.platform == "p9-v100"
        assert args.mode == "test"
        assert args.format == "text"

    def test_lint_fail_on_default_and_choices(self):
        assert build_parser().parse_args(["lint"]).fail_on == "error"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--fail-on", "info"])

    def test_lint_fail_on_warning_fails_on_perf_findings(self, capsys):
        # the suite is MAP-clean but carries PERF10x warnings
        assert main(["lint", "gemm"]) == 0
        capsys.readouterr()
        assert main(["lint", "gemm", "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_transfers_text_report(self, capsys):
        assert main(["transfers"]) == 0
        out = capsys.readouterr().out
        assert "Suite transfer parity" in out
        assert "dead-debug-buffer" in out and "FIXED" in out

    def test_transfers_json_payload(self, capsys):
        assert main(["transfers", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert len(payload["suite"]) == len(all_kernel_cases("test"))
        by_name = {s["scenario"]: s for s in payload["scenarios"]}
        assert by_name["dead-debug-buffer"]["fixed"] is True
        assert by_name["defensive-tofrom"]["map_codes"] == ["MAP002"]
