"""Property tests for the chunk partitioner and entry-merge idempotence.

The partition is the load-bearing pure function of the warm-worker
engine: the declaration-ordered merge, the slot-affinity mapping and the
differential guarantees all assume that ``partition_chunks`` covers
every case index exactly once, in order, for *any* ``(n_items, jobs,
chunk)`` — including degenerate shapes (``jobs > n_items``, ``chunk >
n_items``, empty grids) a hand-written example table would miss.  The
hypothesis runs are derandomized so CI failures replay exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.parallel import (
    AnalysisCache,
    auto_chunk_size,
    partition_chunks,
    resolve_chunk,
)

SETTINGS = settings(max_examples=200, derandomize=True, deadline=None)

n_items_st = st.integers(min_value=0, max_value=500)
jobs_st = st.integers(min_value=1, max_value=64)
chunk_st = st.one_of(st.none(), st.integers(min_value=1, max_value=600))


class TestPartitionChunks:
    @SETTINGS
    @given(n=n_items_st, jobs=jobs_st, chunk=chunk_st)
    def test_every_index_exactly_once_in_order(self, n, jobs, chunk):
        chunks = partition_chunks(n, jobs, chunk)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(n))

    @SETTINGS
    @given(n=n_items_st, jobs=jobs_st, chunk=chunk_st)
    def test_no_chunk_is_empty(self, n, jobs, chunk):
        assert all(len(c) > 0 for c in partition_chunks(n, jobs, chunk))

    @SETTINGS
    @given(jobs=jobs_st, chunk=chunk_st)
    def test_empty_grid_partitions_to_nothing(self, jobs, chunk):
        assert partition_chunks(0, jobs, chunk) == []

    @SETTINGS
    @given(n=st.integers(min_value=1, max_value=500), jobs=jobs_st)
    def test_auto_size_yields_at_most_jobs_chunks(self, n, jobs):
        chunks = partition_chunks(n, jobs)
        assert len(chunks) <= jobs
        assert all(len(c) <= auto_chunk_size(n, jobs) for c in chunks)

    @SETTINGS
    @given(n=st.integers(min_value=1, max_value=63))
    def test_more_jobs_than_items_gives_singleton_chunks(self, n):
        chunks = partition_chunks(n, jobs=64)
        assert len(chunks) == n
        assert all(len(c) == 1 for c in chunks)

    @SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=100),
        jobs=jobs_st,
        extra=st.integers(min_value=0, max_value=100),
    )
    def test_oversized_chunk_is_one_whole_grid_batch(self, n, jobs, extra):
        chunks = partition_chunks(n, jobs, chunk=n + extra)
        assert len(chunks) == 1
        assert list(chunks[0]) == list(range(n))

    @SETTINGS
    @given(n=n_items_st, jobs=jobs_st, chunk=chunk_st)
    def test_partition_is_deterministic(self, n, jobs, chunk):
        assert partition_chunks(n, jobs, chunk) == partition_chunks(
            n, jobs, chunk
        )


class TestResolveChunk:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "7")
        assert resolve_chunk(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "7")
        assert resolve_chunk() == 7

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK", raising=False)
        assert resolve_chunk() is None

    def test_garbage_env_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "several")
        assert resolve_chunk() is None

    def test_floor_at_one(self):
        assert resolve_chunk(0) == 1
        assert resolve_chunk(-3) == 1


# strategy for shipped [key, kind, value] triples with deliberate key
# collisions (small key alphabet) so re-delivery overlap actually occurs
entry_st = st.tuples(
    st.sampled_from([f"k{i}" for i in range(8)]),
    st.sampled_from(["kind.a", "kind.b"]),
    st.one_of(st.integers(-5, 5), st.text(max_size=4), st.none()),
)


class TestMergeIdempotence:
    """Re-delivering shipped cache entries must never change the store."""

    @SETTINGS
    @given(entries=st.lists(entry_st, max_size=16))
    def test_merge_entries_idempotent_under_redelivery(self, entries):
        cache = AnalysisCache(persist=False)
        shipped = [[k, kind, v] for k, kind, v in entries]
        first_added = cache.merge_entries(shipped)
        assert first_added == len({k for k, _, _ in entries})
        snapshot = dict(cache._mem)
        assert cache.merge_entries(shipped) == 0
        assert cache.merge_entries(list(reversed(shipped))) == 0
        assert cache._mem == snapshot

    @SETTINGS
    @given(entries=st.lists(entry_st, max_size=16))
    def test_first_write_wins_on_key_collision(self, entries):
        cache = AnalysisCache(persist=False)
        cache.merge_entries([[k, kind, v] for k, kind, v in entries])
        firsts = {}
        for k, _, v in entries:
            firsts.setdefault(k, v)
        assert dict(cache._mem) == firsts

    @SETTINGS
    @given(entries=st.lists(entry_st, max_size=16))
    def test_merged_entries_are_never_reexported(self, entries):
        # shipping must not loop: what a worker *merged* is excluded from
        # what it ships back (only locally computed entries journal)
        cache = AnalysisCache(persist=False)
        cache.merge_entries([[k, kind, v] for k, kind, v in entries])
        assert cache.journal_size == 0
        assert cache.export_entries() == []
