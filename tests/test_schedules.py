"""Tests for OpenMP schedule support in the model and the simulator."""

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.codegen import OMPSchedule
from repro.machines import POWER9
from repro.models import predict_cpu_time
from repro.sim import simulate_cpu

from .kernels import build_vecadd


def _bound(env):
    db = ProgramAttributeDatabase()
    return db.compile_region(build_vecadd()).bind(env)


class TestDynamicSchedule:
    def test_dynamic_small_chunks_cost_more_in_model(self):
        env = {"n": 100_000}
        bound = _bound(env)
        static = predict_cpu_time(
            bound.region, bound.loadout, 100_000, POWER9, env=env
        )
        dynamic = predict_cpu_time(
            bound.region,
            bound.loadout,
            100_000,
            POWER9,
            env=env,
            schedule=OMPSchedule.DYNAMIC,
            chunk_size=1,
        )
        # Liao's Schedule_times x Schedule_c: one dispatch per iteration
        assert dynamic.schedule_cycles > static.schedule_cycles
        assert dynamic.seconds > static.seconds

    def test_dynamic_large_chunks_approach_static(self):
        env = {"n": 100_000}
        bound = _bound(env)
        static = predict_cpu_time(
            bound.region, bound.loadout, 100_000, POWER9, env=env
        )
        coarse = predict_cpu_time(
            bound.region,
            bound.loadout,
            100_000,
            POWER9,
            env=env,
            schedule=OMPSchedule.DYNAMIC,
            chunk_size=10_000,
        )
        assert coarse.seconds < static.seconds * 1.5

    def test_simulator_mirrors_schedule_cost(self):
        region = build_vecadd()
        env = {"n": 200_000}
        static = simulate_cpu(region, POWER9, env)
        fine = simulate_cpu(
            region, POWER9, env, schedule=OMPSchedule.DYNAMIC, chunk_size=4
        )
        assert fine.seconds > static.seconds

    def test_dynamic_dispatch_constant_used(self):
        env = {"n": 160_000}
        bound = _bound(env)
        chunk = 100
        pred = predict_cpu_time(
            bound.region,
            bound.loadout,
            160_000,
            POWER9,
            env=env,
            schedule=OMPSchedule.DYNAMIC,
            chunk_size=chunk,
        )
        chunks_per_thread = -(-160_000 // (chunk * 160))
        assert pred.schedule_cycles == pytest.approx(
            chunks_per_thread * POWER9.par_schedule_dynamic_cycles
        )
