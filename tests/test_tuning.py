"""Tests for the analytical grid-geometry tuner (the Lloyd et al. angle)."""

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.codegen import CANDIDATE_BLOCK_SIZES, tune_threads_per_block
from repro.machines import PLATFORM_P9_V100
from repro.polybench import benchmark_by_name

from .kernels import build_vecadd

GPU = PLATFORM_P9_V100.gpu
BUS = PLATFORM_P9_V100.bus


def _bound(region, env):
    db = ProgramAttributeDatabase()
    return db.compile_region(region).bind(env)


class TestGeometryTuning:
    def test_returns_a_candidate(self):
        bound = _bound(build_vecadd(), {"n": 1 << 20})
        choice = tune_threads_per_block(bound, GPU, BUS)
        assert choice.threads_per_block in CANDIDATE_BLOCK_SIZES
        assert choice.predicted_kernel_seconds > 0
        assert len(choice.candidates) == len(CANDIDATE_BLOCK_SIZES)

    def test_never_worse_than_default(self):
        for bench in ("gemm", "atax", "2dconv"):
            spec = benchmark_by_name(bench)
            for region in spec.build():
                bound = _bound(region, spec.env("benchmark"))
                choice = tune_threads_per_block(bound, GPU, BUS)
                assert choice.improvement_over_default >= 0.999

    def test_ties_keep_compiler_default(self):
        # 2dconv: block size is immaterial (huge collapse(2) grid): keep 128
        spec = benchmark_by_name("2dconv")
        (region,) = spec.build()
        bound = _bound(region, spec.env("benchmark"))
        choice = tune_threads_per_block(bound, GPU, BUS)
        assert choice.threads_per_block == 128

    def test_small_band_avoids_giant_blocks(self):
        # atax_k1 at 9600 iterations: 1024-thread blocks waste occupancy
        spec = benchmark_by_name("atax")
        region = spec.build()[0]
        bound = _bound(region, spec.env("benchmark"))
        choice = tune_threads_per_block(bound, GPU, BUS)
        by_tpb = dict(choice.candidates)
        assert by_tpb[1024] > by_tpb[128]
        assert choice.threads_per_block <= 256

    def test_default_must_be_a_candidate(self):
        bound = _bound(build_vecadd(), {"n": 4096})
        with pytest.raises(ValueError):
            tune_threads_per_block(bound, GPU, BUS, candidates=(64, 256))

    def test_plan_matches_choice(self):
        bound = _bound(build_vecadd(), {"n": 1 << 22})
        choice = tune_threads_per_block(bound, GPU, BUS)
        assert choice.plan.threads_per_block == choice.threads_per_block
