"""Tests for the region lint subsystem: diagnostics, passes, gate, CLI."""

import json
import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

from repro.ir import Region, cmp
from repro.ir.validate import ValidationError, structural_diagnostics, validate_region
from repro.ir.visit import memory_accesses
from repro.lint import (
    Diagnostic,
    FALLBACK_LINT,
    GateDecision,
    LintGate,
    LintGateError,
    LintReport,
    PassManager,
    Severity,
    StructuralPass,
    Verdict,
    cross_thread_conflict,
    default_pass_manager,
    is_reduction_like,
    lint_region,
    render_reports_text,
    reports_to_json,
)
from repro.machines import platform_by_name
from repro.polybench import all_kernel_cases
from repro.runtime import OffloadingRuntime
from repro.runtime.multi import MultiDeviceRuntime

from .kernels import (
    build_gemm,
    build_rowwise,
    build_strided_store,
    build_undeclared_reduction,
    build_vecadd,
    build_write_write_race,
)


def _conflict(region, band_vars=None):
    """Run the dependence test on the first store pair of a region."""
    accs = memory_accesses(region)
    stores = [a for a in accs if a.is_store]
    if band_vars is None:
        band_vars = tuple(lp.var.name for lp in region.parallel_band())
    extents = {}
    for a in accs:
        for lp in a.loop_path:
            extents[lp.var.name] = lp.count
    if len(stores) >= 2:
        return cross_thread_conflict(stores[0], stores[1], band_vars, extents)
    return cross_thread_conflict(stores[0], stores[0], band_vars, extents)


class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.ERROR.label == "error"

    def test_render_contains_code_location_hint(self):
        d = Diagnostic(
            code="RACE001",
            severity=Severity.ERROR,
            message="boom",
            region="k",
            path=("parallel for i", "store A[[i]]"),
            hint="fix it",
        )
        text = d.render()
        assert "RACE001" in text
        assert "k/parallel for i/store A[[i]]" in text
        assert "hint: fix it" in text

    def test_report_sorts_worst_first(self):
        info = Diagnostic(code="PERF102", severity=Severity.INFO, message="i")
        err = Diagnostic(code="RACE001", severity=Severity.ERROR, message="e")
        warn = Diagnostic(code="PERF101", severity=Severity.WARNING, message="w")
        rep = LintReport("r", (info, err, warn))
        assert [d.code for d in rep.diagnostics] == ["RACE001", "PERF101", "PERF102"]
        assert rep.has_errors
        assert rep.max_severity is Severity.ERROR

    def test_empty_report_renders_clean(self):
        rep = LintReport("r", ())
        assert rep.render_text() == "r: clean"
        assert rep.max_severity is None

    def test_reports_json_roundtrip(self):
        rep = lint_region(build_write_write_race())
        payload = json.loads(reports_to_json([rep]))
        assert payload[0]["region"] == "ww_race"
        assert payload[0]["errors"] >= 1
        codes = {d["code"] for d in payload[0]["diagnostics"]}
        assert "RACE001" in codes

    def test_totals_footer(self):
        text = render_reports_text([lint_region(build_vecadd())])
        assert "1 region(s): 0 error(s)" in text


class TestDependence:
    def test_thread_distinct_store_independent(self):
        pv = _conflict(build_vecadd())
        assert pv.verdict == Verdict.INDEPENDENT

    def test_shifted_pair_conflicts(self):
        pv = _conflict(build_write_write_race())
        assert pv.verdict == Verdict.CONFLICT

    def test_thread_invariant_store_conflicts(self):
        pv = _conflict(build_undeclared_reduction())
        assert pv.verdict == Verdict.CONFLICT

    def test_diagonal_sum_conflicts(self):
        # A[i + j] over a collapsed band: (i+1, j) and (i, j+1) collide.
        r = Region("diag")
        n = r.param("n")
        A = r.array("A", (n + n,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.parallel_loop("j", n) as j:
                r.store(A[i.sym + j.sym], 1.0)
        pv = _conflict(r)
        assert pv.verdict == Verdict.CONFLICT

    def test_gcd_refutes_even_odd(self):
        r = Region("evenodd")
        n = r.param("n")
        A = r.array("A", (n + n + 1,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i.sym * 2], 1.0)
            r.store(A[i.sym * 2 + 1], 2.0)
        pv = _conflict(r)
        assert pv.verdict == Verdict.INDEPENDENT
        assert "GCD" in pv.detail

    def test_bounds_refute_far_offset(self):
        # A[i] vs A[i+8] with only 8 iterations: offsets never meet.
        r = Region("far")
        A = r.array("A", (16,), output=True)
        with r.parallel_loop("i", 8) as i:
            r.store(A[i.sym], 1.0)
            r.store(A[i.sym + 8], 2.0)
        pv = _conflict(r)
        assert pv.verdict == Verdict.INDEPENDENT

    def test_non_affine_is_undecided(self):
        r = Region("sq")
        n = r.param("n")
        A = r.array("A", (n * n,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i.sym * i.sym], 1.0)
        pv = _conflict(r)
        assert pv.verdict == Verdict.UNDECIDED

    @given(a=st.integers(1, 7), b=st.integers(-5, 5))
    def test_injective_affine_store_always_independent(self, a, b):
        # A[a*i + b] is injective in i: no two threads share a cell.
        r = Region("inj")
        n = r.param("n")
        A = r.array("A", (n * 8 + 8,))
        with r.parallel_loop("i", n) as i:
            r.store(A[i.sym * a + (b + 5)], 1.0)
        assert _conflict(r).verdict == Verdict.INDEPENDENT

    @given(c=st.integers(0, 100))
    def test_constant_index_store_always_conflicts(self, c):
        r = Region("const")
        n = r.param("n")
        A = r.array("A", (101,), inout=True)
        with r.parallel_loop("i", n):
            r.store(A[c], 1.0)
        assert _conflict(r).verdict == Verdict.CONFLICT


class TestStructural:
    def test_validate_raises_value_error_subclass(self):
        r = Region("nb")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.loop("i", n) as i:  # sequential only: no band
            r.store(A[i], 1.0)
        with pytest.raises(ValidationError):
            validate_region(r)
        assert issubclass(ValidationError, ValueError)

    def test_missing_band_is_struct001(self):
        r = Region("nb2")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.loop("i", n) as i:
            r.store(A[i], 1.0)
        diags = structural_diagnostics(r)
        assert "STRUCT001" in {d.code for d in diags}

    def test_error_message_carries_node_path(self):
        r = Region("scope")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n):
            r.store(A[Region("other").param("z").sym], 1.0)
        with pytest.raises(ValidationError, match="parallel for i"):
            validate_region(r)

    def test_structural_errors_short_circuit_passes(self):
        r = Region("nb3")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.loop("i", n) as i:
            r.store(A[i], 1.0)
        report = lint_region(r)
        assert report.has_errors
        # only structural findings: downstream passes were skipped
        assert all(d.code.startswith("STRUCT") for d in report.diagnostics)


class TestCorrectnessPasses:
    def test_write_write_race_flagged(self):
        report = lint_region(build_write_write_race())
        codes = {d.code for d in report.errors}
        assert "RACE001" in codes

    def test_undeclared_reduction_flagged_as_red001_only(self):
        report = lint_region(build_undeclared_reduction())
        assert {d.code for d in report.errors} == {"RED001"}

    def test_declared_reduction_is_clean(self):
        r = Region("declared")
        n = r.param("n")
        x = r.array("x", (n,))
        s = r.array("s", (1,), inout=True)
        with r.parallel_loop("i", n) as i:
            r.reduce_store(s[0], x[i], op="add")
        assert not lint_region(r).has_errors

    def test_read_write_race_flagged(self):
        # thread i reads A[i+1] while thread i+1 writes it
        r = Region("rw")
        n = r.param("n")
        A = r.array("A", (n + 1,), inout=True)
        B = r.array("B", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(B[i], A[i.sym + 1])
            r.store(A[i.sym], 0.0)
        codes = {d.code for d in lint_region(r).errors}
        assert "RACE002" in codes

    def test_inplace_stencil_races_detected(self):
        # A[i][j] = f(A[i±1][j±1]): the store reads back its own cell (so
        # it *looks* reduction-like) but must still race against the
        # neighbour reads; the diagonal pairs need the combined
        # forced-delta solution (delta(i)=-1, delta(j)=-1).
        r = Region("stencil")
        n = r.param("n")
        A = r.array("A", (n, n), inout=True)
        with r.parallel_loop("i", n - 2, start=1) as i:
            with r.parallel_loop("j", n - 2, start=1) as j:
                r.store(
                    A[i, j],
                    A[i, j] + A[i - 1, j] + A[i, j - 1] + A[i - 1, j - 1],
                )
        report = lint_region(r)
        races = report.by_code("RACE002")
        assert len(races) == 3  # one per neighbour read; self-read exempt
        assert not report.by_code("RACE003")
        assert not report.by_code("RED001")

    def test_is_reduction_like(self):
        r = Region("rl")
        n = r.param("n")
        s = r.array("s", (1,), inout=True)
        with r.parallel_loop("i", n):
            r.store(s[0], s[0] + 1.0)
        store = [a for a in memory_accesses(r) if a.is_store][0]
        assert is_reduction_like(store.node)

    def test_gemm_accumulator_not_a_reduction_finding(self):
        assert not lint_region(build_gemm()).has_errors

    def test_bounds_overrun_flagged(self):
        r = Region("over")
        A = r.array("A", (4,), output=True)
        with r.parallel_loop("i", 8) as i:
            r.store(A[i], 1.0)
        codes = {d.code for d in lint_region(r).errors}
        assert "BND002" in codes

    def test_negative_index_flagged(self):
        r = Region("neg")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n, start=-2) as i:
            r.store(A[i], 1.0)
        codes = {d.code for d in lint_region(r).errors}
        assert "BND001" in codes

    def test_numeric_env_sharpens_bounds(self):
        # symbolically fine (extent m vs trips n), numerically overrun
        r = Region("envbnd")
        n, m = r.param_tuple("n", "m")
        A = r.array("A", (m,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i], 1.0)
        assert not lint_region(r).has_errors
        report = lint_region(r, env={"n": 16, "m": 8})
        assert "BND002" in {d.code for d in report.errors}

    def test_zero_extent_array_flagged(self):
        r = Region("zext")
        A = r.array("A", (0,), output=True)
        with r.parallel_loop("i", 1) as i:
            r.store(A[i], 1.0)
        codes = {d.code for d in lint_region(r).diagnostics}
        assert "BND003" in codes

    def test_dead_loop_warned(self):
        r = Region("dead")
        n = r.param("n")
        A = r.array("A", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.loop("j", 0):
                r.store(A[i], 1.0)
        report = lint_region(r)
        assert "BND004" in {d.code for d in report.diagnostics}
        assert not report.has_errors

    def test_triangular_bounds_in_range(self):
        # for j2 in [j1, m): A[j1][j2] stays within (m, m)
        r = Region("tri")
        m = r.param("m")
        A = r.array("A", (m, m), output=True)
        with r.parallel_loop("j1", m) as j1:
            with r.loop("j2", m - j1.sym, start=j1) as j2:
                r.store(A[j1, j2], 1.0)
        assert not lint_region(r).has_errors


class TestPerformancePasses:
    def test_symbolic_stride_warns_uncoalesced(self):
        report = lint_region(build_rowwise())
        assert "PERF101" in {d.code for d in report.warnings}

    def test_numeric_stride_warns_uncoalesced(self):
        report = lint_region(build_strided_store(), env={"max": 1100})
        assert "PERF101" in {d.code for d in report.warnings}

    def test_coalesced_region_has_no_perf101(self):
        report = lint_region(build_vecadd(), env={"n": 4096})
        assert "PERF101" not in {d.code for d in report.diagnostics}

    def test_unit_stride_false_sharing_is_info(self):
        report = lint_region(build_vecadd())
        fs = report.by_code("PERF102")
        assert fs and all(d.severity is Severity.INFO for d in fs)

    def test_subline_stride_false_sharing_warns(self):
        r = Region("fs2")
        n = r.param("n")
        A = r.array("A", (n * 4,), output=True)
        with r.parallel_loop("i", n) as i:
            r.store(A[i.sym * 4], 1.0)
        fs = lint_region(r).by_code("PERF102")
        assert fs and fs[0].severity is Severity.WARNING

    def test_data_dependent_branch_warns(self):
        r = Region("div")
        n = r.param("n")
        A = r.array("A", (n,))
        B = r.array("B", (n,), output=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.0)):
                r.store(B[i], 1.0)
        found = lint_region(r).by_code("PERF103")
        assert found and found[0].severity is Severity.WARNING

    def test_uniform_branch_is_info(self):
        r = Region("uni")
        n = r.param("n")
        B = r.array("B", (n,), output=True)
        t = r.scalar("t")
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", t, 0.0)):
                r.store(B[i], 1.0)
        found = lint_region(r).by_code("PERF103")
        assert found and found[0].severity is Severity.INFO

    def test_footprint_exceeding_device_memory_warns(self):
        platform = platform_by_name("p9-v100")  # 16 GiB V100
        report = lint_region(
            build_vecadd(), env={"n": 2 * 1024**3}, platform=platform
        )
        assert "PERF104" in {d.code for d in report.warnings}

    def test_footprint_within_memory_is_silent(self):
        platform = platform_by_name("p9-v100")
        report = lint_region(build_vecadd(), env={"n": 4096}, platform=platform)
        assert "PERF104" not in {d.code for d in report.diagnostics}


class TestPolybenchClean:
    @pytest.mark.parametrize(
        "case", all_kernel_cases("test"), ids=lambda c: c.name
    )
    def test_no_error_findings(self, case):
        report = lint_region(case.region, env=case.env)
        assert not report.has_errors, report.render_text()

    def test_no_undecided_races_across_suite(self):
        for case in all_kernel_cases("test"):
            report = lint_region(case.region)
            assert not report.by_code("RACE003"), report.render_text()


class TestGate:
    def test_clean_region_yields_no_decision(self):
        gate = LintGate(mode="host")
        assert gate.decide(build_vecadd()) is None

    def test_blocked_region_decision(self):
        gate = LintGate(mode="host")
        decision = gate.decide(build_write_write_race())
        assert decision is not None
        assert decision.action == "force-host"
        assert decision.blocked
        assert "RACE001" in decision.codes

    def test_warn_mode_not_blocking(self):
        decision = LintGate(mode="warn").decide(build_write_write_race())
        assert decision is not None and not decision.blocked

    def test_off_mode_skips_linting(self):
        assert LintGate(mode="off").decide(build_write_write_race()) is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            LintGate(mode="yolo")

    def test_report_cached_per_region_name(self):
        gate = LintGate()
        r = build_write_write_race()
        assert gate.inspect(r) is gate.inspect(r)

    def test_perf_warnings_never_block(self):
        decision = LintGate(mode="host").decide(build_rowwise())
        assert decision is None  # PERF101 is warning severity

    def test_custom_block_prefixes(self):
        gate = LintGate(mode="host", block_prefixes=("BND",))
        r = Region("over2")
        A = r.array("A", (4,), output=True)
        with r.parallel_loop("i", 8) as i:
            r.store(A[i], 1.0)
        decision = gate.decide(r)
        assert decision is not None and decision.codes == ("BND002",)


class TestRuntimeGate:
    ENV = {"n": 64}

    def _runtime(self, **kw):
        rt = OffloadingRuntime(platform_by_name("p9-v100"), **kw)
        rt.compile_region(build_write_write_race())
        return rt

    def test_force_host_records_lint_provenance(self):
        rt = self._runtime(lint_gate=LintGate(mode="host"))
        rec = rt.launch("ww_race", self.ENV)
        assert rec.requested_target == "gpu"
        assert rec.target == "cpu"
        assert rec.fallback == FALLBACK_LINT == "lint"
        assert rec.fell_back
        assert isinstance(rec.lint, GateDecision)
        assert rec.lint.codes == ("RACE001",)
        assert rec.attempts == 0  # never reached the accelerator

    def test_raise_mode_refuses_launch(self):
        rt = self._runtime(lint_gate=LintGate(mode="raise"))
        with pytest.raises(LintGateError, match="RACE001"):
            rt.launch("ww_race", self.ENV)

    def test_warn_mode_dispatches_but_records(self):
        rt = self._runtime(lint_gate=LintGate(mode="warn"))
        rec = rt.launch("ww_race", self.ENV)
        assert rec.target == rec.requested_target == "gpu"
        assert rec.fallback is None
        assert rec.lint is not None and rec.lint.action == "warn"

    def test_clean_run_bit_identical_with_and_without_gate(self):
        plain = OffloadingRuntime(platform_by_name("p9-v100"))
        gated = OffloadingRuntime(
            platform_by_name("p9-v100"), lint_gate=LintGate(mode="host")
        )
        for rt in (plain, gated):
            rt.compile_region(build_vecadd())
        a = plain.launch("vecadd", {"n": 4096})
        b = gated.launch("vecadd", {"n": 4096})
        assert a == b
        assert b.lint is None

    def test_multi_runtime_forces_host(self):
        mrt = MultiDeviceRuntime(
            platform_by_name("p9-v100"), lint_gate=LintGate(mode="host")
        )
        mrt.compile_region(build_write_write_race())
        rec = mrt.launch("ww_race", self.ENV)
        assert rec.executed_outcome.kind == "cpu"
        assert rec.fallback == FALLBACK_LINT
        assert rec.lint is not None and rec.lint.blocked
        assert rec.attempts == 0

    def test_multi_runtime_raise_mode(self):
        mrt = MultiDeviceRuntime(
            platform_by_name("p9-v100"), lint_gate=LintGate(mode="raise")
        )
        mrt.compile_region(build_write_write_race())
        with pytest.raises(LintGateError):
            mrt.launch("ww_race", self.ENV)

    def test_multi_clean_run_bit_identical(self):
        plain = MultiDeviceRuntime(platform_by_name("p9-v100"))
        gated = MultiDeviceRuntime(
            platform_by_name("p9-v100"), lint_gate=LintGate(mode="host")
        )
        for rt in (plain, gated):
            rt.compile_region(build_vecadd())
        a = plain.launch("vecadd", {"n": 4096})
        b = gated.launch("vecadd", {"n": 4096})
        assert a == b
        assert b.lint is None


class TestPassManager:
    def test_default_catalog_names(self):
        names = default_pass_manager().pass_names()
        assert names[0] == "structural"
        assert {"race", "reduction", "bounds"} <= set(names)

    def test_register_chains(self):
        pm = PassManager().register(StructuralPass())
        assert pm.pass_names() == ["structural"]

    def test_report_region_name(self):
        assert lint_region(build_vecadd()).region_name == "vecadd"


class TestImportOrder:
    """repro.ir and repro.lint must import cleanly from either side."""

    @pytest.mark.parametrize("first", ["repro.ir", "repro.lint"])
    def test_import_order(self, first):
        second = "repro.lint" if first == "repro.ir" else "repro.ir"
        code = (
            f"import {first}\n"
            f"import {second}\n"
            "from repro.lint import lint_region, LintGate\n"
            "from repro.ir.validate import structural_diagnostics\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
