"""Unit tests for the microbenchmark calibration package."""

import pytest

from repro.calibrate import (
    build_dot_rows,
    build_empty_body,
    build_strided_walk,
    build_triad,
    chase_latency,
    fit_model_calibration,
    measure_parallel_overhead,
    overhead_curve,
    probe_gpu_latencies,
    probe_tlb,
    simulate_page_walk,
)
from repro.ir import validate_region
from repro.machines import (
    PLATFORM_P9_V100,
    POWER8,
    POWER9,
    TESLA_K80,
    TESLA_V100,
)


class TestProbeKernels:
    def test_all_probe_kernels_validate(self):
        for build in (build_triad, build_dot_rows, build_empty_body):
            validate_region(build())
        validate_region(build_strided_walk())

    def test_strided_walk_has_symbolic_stride(self):
        from repro.ipda import analyze_region
        from repro.symbolic import Sym

        res = analyze_region(build_strided_walk())
        (acc,) = res.accesses
        assert acc.thread_stride == Sym("s")


class TestTLBProbe:
    def test_recovers_table2_values(self):
        res = probe_tlb(POWER9)
        assert res.measured_entries == POWER9.tlb_entries == 1024
        assert res.measured_miss_penalty_cycles == POWER9.tlb_miss_penalty == 14

    def test_fitting_working_set_is_free(self):
        assert simulate_page_walk(POWER9, POWER9.tlb_entries) == 0.0

    def test_thrashing_costs_full_penalty(self):
        cost = simulate_page_walk(POWER9, POWER9.tlb_entries * 4)
        assert cost == pytest.approx(POWER9.tlb_miss_penalty)

    def test_invalid_pages(self):
        with pytest.raises(ValueError):
            simulate_page_walk(POWER9, 0)


class TestGPULatencyProbe:
    def test_recovers_table3_latencies(self):
        probe = probe_gpu_latencies(TESLA_V100)
        assert probe.l1_latency == TESLA_V100.l1_latency
        assert probe.l2_latency == TESLA_V100.l2_latency
        assert probe.dram_latency == TESLA_V100.mem_latency

    def test_k80_latencies(self):
        probe = probe_gpu_latencies(TESLA_K80)
        assert probe.l1_latency == TESLA_K80.l1_latency
        assert probe.dram_latency == TESLA_K80.mem_latency

    def test_latency_monotone_in_footprint(self):
        small = chase_latency(TESLA_V100, 16 * 1024)
        mid = chase_latency(TESLA_V100, 1024 * 1024)
        big = chase_latency(TESLA_V100, 512 * 1024 * 1024)
        assert small < mid < big

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            chase_latency(TESLA_V100, 0)


class TestEPCC:
    def test_baseline_matches_table2_sum(self):
        m = measure_parallel_overhead(POWER9, 8)
        expected = (
            POWER9.par_startup_cycles
            + POWER9.par_schedule_static_cycles
            + POWER9.sync_cycles
        )
        assert m.overhead_cycles == pytest.approx(expected, rel=0.05)

    def test_curve_is_monotone(self):
        curve = overhead_curve(POWER9, (8, 32, 160))
        cycles = [m.overhead_cycles for m in curve]
        assert cycles == sorted(cycles)
        assert cycles[-1] > 20 * cycles[0]

    def test_curve_respects_hardware_limit(self):
        curve = overhead_curve(POWER8, (8, 160, 999))
        assert max(m.num_threads for m in curve) == 160


class TestModelFit:
    def test_fit_produces_positive_scales(self):
        cal = fit_model_calibration(PLATFORM_P9_V100)
        assert cal.cpu_time_scale > 0
        assert cal.gpu_time_scale > 0
        assert cal.platform_name == "POWER9+V100"

    def test_fit_is_roughly_centred_for_cpu(self):
        # after structural calibration the CPU model tracks the probes
        cal = fit_model_calibration(PLATFORM_P9_V100)
        assert 0.3 < cal.cpu_time_scale < 3.0

    def test_fit_depends_on_team_size(self):
        full = fit_model_calibration(PLATFORM_P9_V100)
        four = fit_model_calibration(PLATFORM_P9_V100, num_threads=4)
        assert full.num_threads is None and four.num_threads == 4

    def test_invalid_scales_rejected(self):
        from repro.calibrate import ModelCalibration

        with pytest.raises(ValueError):
            ModelCalibration("x", None, cpu_time_scale=0.0, gpu_time_scale=1.0)
