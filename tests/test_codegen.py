"""Unit + property tests for the dual execution plans."""

import pytest
from hypothesis import given, strategies as st

from repro.codegen import (
    DEFAULT_THREADS_PER_BLOCK,
    OMPSchedule,
    plan_cpu_execution,
    plan_gpu_launch,
)
from repro.machines import POWER9, TESLA_K80, TESLA_V100


class TestGPULaunchPlan:
    def test_paper_omp_rep_example(self):
        """Section IV.B: 1024 iterations, 1 block of 128 → 8 reps each."""
        # build a device that can only host one 128-thread block
        import dataclasses

        tiny = dataclasses.replace(
            TESLA_V100, num_sms=1, max_blocks_per_sm=1, max_threads_per_sm=128
        )
        plan = plan_gpu_launch(1024, tiny, threads_per_block=128)
        assert plan.num_blocks == 1
        assert plan.omp_rep == 8

    def test_small_launch_uncapped(self):
        plan = plan_gpu_launch(1100, TESLA_V100)
        assert plan.threads_per_block == DEFAULT_THREADS_PER_BLOCK
        assert plan.num_blocks == -(-1100 // 128)
        assert plan.omp_rep == 1
        assert plan.rep == 1

    def test_huge_launch_capped_with_reps(self):
        iters = 9600 * 9600
        plan = plan_gpu_launch(iters, TESLA_V100)
        cap = TESLA_V100.num_sms * min(
            TESLA_V100.max_blocks_per_sm,
            TESLA_V100.max_threads_per_sm // 128,
        )
        assert plan.num_blocks == cap
        assert plan.omp_rep == -(-iters // (cap * 128))
        assert plan.total_threads == cap * 128

    def test_active_sms_bounded(self):
        plan = plan_gpu_launch(130, TESLA_V100)  # 2 blocks
        assert plan.active_sms == 2
        big = plan_gpu_launch(10**7, TESLA_V100)
        assert big.active_sms == TESLA_V100.num_sms

    def test_warps_within_limits(self):
        plan = plan_gpu_launch(10**7, TESLA_V100, threads_per_block=1024)
        assert plan.active_warps_per_sm <= TESLA_V100.max_warps_per_sm
        assert plan.warps_per_block == 32

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_gpu_launch(0, TESLA_V100)
        with pytest.raises(ValueError):
            plan_gpu_launch(100, TESLA_V100, threads_per_block=2048)

    def test_describe(self):
        text = plan_gpu_launch(1024, TESLA_V100).describe()
        assert "<<<" in text and "OMP_Rep" in text

    @given(iters=st.integers(1, 10**9))
    def test_coverage_invariant(self, iters):
        """Threads x OMP_Rep always covers the iteration space exactly."""
        plan = plan_gpu_launch(iters, TESLA_K80)
        assert plan.total_threads * plan.omp_rep >= iters
        # not over-provisioned by more than one rep
        assert plan.total_threads * (plan.omp_rep - 1) < iters

    @given(iters=st.integers(1, 10**8), tpb=st.sampled_from([32, 128, 256, 1024]))
    def test_geometry_limits(self, iters, tpb):
        plan = plan_gpu_launch(iters, TESLA_V100, threads_per_block=tpb)
        assert 1 <= plan.active_sms <= TESLA_V100.num_sms
        assert 1 <= plan.active_warps_per_sm <= TESLA_V100.max_warps_per_sm
        assert plan.rep >= 1
        assert (
            plan.resident_blocks_per_sm * tpb <= TESLA_V100.max_threads_per_sm
            or plan.resident_blocks_per_sm == 1
        )


class TestCPUPlan:
    def test_default_uses_all_threads(self):
        plan = plan_cpu_execution(9600, POWER9)
        assert plan.num_threads == 160
        assert plan.schedule is OMPSchedule.STATIC
        assert plan.iterations_per_thread == 60

    def test_explicit_team(self):
        plan = plan_cpu_execution(1100, POWER9, num_threads=4)
        assert plan.num_threads == 4
        assert plan.iterations_per_thread == 275

    def test_team_clamped_to_hardware(self):
        plan = plan_cpu_execution(100, POWER9, num_threads=1000)
        assert plan.num_threads == 160

    def test_threads_per_core(self):
        assert plan_cpu_execution(10**6, POWER9).threads_per_core == 8
        assert plan_cpu_execution(10**6, POWER9, num_threads=20).threads_per_core == 1
        assert plan_cpu_execution(10**6, POWER9, num_threads=40).threads_per_core == 2

    def test_fewer_iterations_than_threads(self):
        plan = plan_cpu_execution(10, POWER9)
        assert plan.iterations_per_thread == 1

    def test_dynamic_schedule(self):
        plan = plan_cpu_execution(
            1000, POWER9, schedule=OMPSchedule.DYNAMIC, chunk_size=10
        )
        assert plan.chunk_size == 10
        assert plan.schedule_times >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_cpu_execution(0, POWER9)
        with pytest.raises(ValueError):
            plan_cpu_execution(10, POWER9, num_threads=0)

    def test_describe(self):
        text = plan_cpu_execution(1000, POWER9, num_threads=4).describe()
        assert "num_threads(4)" in text
        assert "static" in text

    @given(iters=st.integers(1, 10**7), threads=st.integers(1, 200))
    def test_chunk_covers_iterations(self, iters, threads):
        plan = plan_cpu_execution(iters, POWER9, num_threads=threads)
        assert plan.iterations_per_thread * plan.num_threads >= iters
