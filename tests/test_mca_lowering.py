"""Unit tests for IR → machine-op lowering and cycles-per-iteration."""

import pytest

from repro.ir import Region, cmp, select, sqrt
from repro.machines import POWER8, POWER9
from repro.mca import (
    analyze_region,
    find_band_level,
    lower_region,
    machine_cycles_per_iter,
)

from .kernels import build_colwise, build_gemm, build_rowwise, build_vecadd

FIXED_TRIPS = lambda n: (lambda loop: float(n))  # noqa: E731


class TestLowering:
    def test_vecadd_ops(self):
        root = lower_region(build_vecadd(), POWER9, vectorize=False)
        band = find_band_level(root)
        opcodes = [o.opcode for o in band.leaf_ops]
        assert opcodes.count("load") == 2
        assert opcodes.count("store") == 1
        assert opcodes.count("fadd") == 1
        assert "br" in opcodes  # loop control present

    def test_vecadd_band_vectorizes(self):
        root = lower_region(build_vecadd(), POWER9, vectorize=True)
        band = find_band_level(root)
        assert band.info.vectorized
        assert band.info.lanes == POWER9.vector_lanes(4)

    def test_gemm_fma_fused(self):
        root = lower_region(build_gemm(), POWER9, vectorize=False)
        band = find_band_level(root)
        # inner j level -> k level
        j_level = band.sub_loops[0]
        k_level = j_level.sub_loops[0]
        opcodes = [o.opcode for o in k_level.leaf_ops]
        assert "fma" in opcodes
        assert "fadd" not in opcodes  # fused away

    def test_gemm_reduction_is_carried_scalar(self):
        root = lower_region(build_gemm(), POWER9, vectorize=False)
        k_level = find_band_level(root).sub_loops[0].sub_loops[0]
        # carried regs: induction + accumulator
        assert len(k_level.carried) == 2

    def test_gemm_band_vectorized_when_collapse2(self):
        r = Region("gemm2")
        ni, nj, nk = r.param_tuple("ni", "nj", "nk")
        A = r.array("A", (ni, nk))
        B = r.array("B", (nk, nj))
        C = r.array("C", (ni, nj), inout=True)
        alpha, beta = r.scalars("alpha", "beta")
        with r.parallel_loop("i", ni) as i:
            with r.parallel_loop("j", nj) as j:
                acc = r.local("acc", C[i, j] * beta)
                with r.loop("k", nk) as k:
                    r.assign(acc, acc + alpha * A[i, k] * B[k, j])
                r.store(C[i, j], acc)
        root = lower_region(r, POWER9)
        band = find_band_level(root)
        # j is the innermost band var; B[k][j] and C[i][j] are stride-1,
        # A[i][k] is stride-0 along j -> band vectorizes
        assert band.is_band_vectorized()

    def test_colwise_band_vectorizes(self):
        # A[i][j] stride 1 along band var j -> outer-loop vectorization
        root = lower_region(build_colwise(), POWER9)
        band = find_band_level(root)
        assert band.info.vectorized

    def test_rowwise_inner_vectorizes(self):
        # inner j loop walks stride 1 -> classic innermost vectorization
        root = lower_region(build_rowwise(), POWER9)
        band = find_band_level(root)
        assert not band.info.vectorized
        inner = band.sub_loops[0]
        assert inner.info.vectorized
        assert inner.info.unroll > 1  # reduction unroll-and-jam

    def test_vectorize_flag_off_disables(self):
        root = lower_region(build_rowwise(), POWER9, vectorize=False)
        band = find_band_level(root)
        assert all(not s.info.vectorized for s in band.sub_loops)

    def test_select_lowers_to_fsel(self):
        r = Region("sel")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            x = A[i]
            r.store(A[i], select(cmp("le", x, 0.1), 1.0, sqrt(x)))
        root = lower_region(r, POWER9, vectorize=False)
        band = find_band_level(root)
        ops = [o.opcode for o in band.leaf_ops]
        assert "cmp" in ops and "fsel" in ops and "fsqrt" in ops

    def test_if_becomes_branch_levels(self):
        r = Region("iff")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.0)):
                r.store(A[i], 0.0)
        root = lower_region(r, POWER9, vectorize=False)
        band = find_band_level(root)
        assert len(band.sub_branches) == 1
        then_lv, else_lv = band.sub_branches[0]
        assert then_lv.op_count() > 0
        assert else_lv.op_count() == 0


class TestCyclesPerIteration:
    def test_more_work_costs_more(self):
        trips = FIXED_TRIPS(128)
        small = machine_cycles_per_iter(build_vecadd(), POWER9, trips)
        big = machine_cycles_per_iter(build_gemm(), POWER9, trips)
        assert big > small * 10

    def test_trip_count_scales_inner_loops(self):
        # GEMM has two nested inner loops (j, k): doubling trips quadruples
        # the per-parallel-iteration cost
        c128 = machine_cycles_per_iter(build_gemm(), POWER9, FIXED_TRIPS(128))
        c256 = machine_cycles_per_iter(build_gemm(), POWER9, FIXED_TRIPS(256))
        assert c256 == pytest.approx(4 * c128, rel=0.1)

    def test_trip_count_scales_linearly_single_loop(self):
        c128 = machine_cycles_per_iter(build_rowwise(), POWER9, FIXED_TRIPS(128))
        c256 = machine_cycles_per_iter(build_rowwise(), POWER9, FIXED_TRIPS(256))
        assert c256 == pytest.approx(2 * c128, rel=0.15)

    def test_vectorization_speeds_up_rowwise(self):
        trips = FIXED_TRIPS(1024)
        vec = machine_cycles_per_iter(build_rowwise(), POWER9, trips, vectorize=True)
        scalar = machine_cycles_per_iter(
            build_rowwise(), POWER9, trips, vectorize=False
        )
        assert vec < scalar / 2

    def test_power9_beats_power8_on_vector_kernels(self):
        trips = FIXED_TRIPS(1024)
        p8 = machine_cycles_per_iter(build_colwise(), POWER8, trips)
        p9 = machine_cycles_per_iter(build_colwise(), POWER9, trips)
        assert p9 < p8

    def test_positive_and_finite(self):
        for build in (build_vecadd, build_gemm, build_colwise, build_rowwise):
            c = machine_cycles_per_iter(build(), POWER9, FIXED_TRIPS(64))
            assert 0 < c < 1e9


class TestReport:
    def test_report_fields(self):
        rep = analyze_region(build_gemm(), POWER9, FIXED_TRIPS(128))
        assert rep.region_name == "gemm"
        assert rep.cycles_per_iteration > 0
        assert rep.total_ops > 5
        assert 0 < rep.ipc < POWER9.dispatch_width + 1
        assert rep.bottleneck in ("FX", "LS", "FP", "VSX", "BR")

    def test_render_contains_pressure_bars(self):
        rep = analyze_region(build_gemm(), POWER9, FIXED_TRIPS(128))
        text = rep.render()
        assert "resource pressure" in text
        assert "cycles / parallel iteration" in text

    def test_vectorized_reported(self):
        rep = analyze_region(build_rowwise(), POWER9, FIXED_TRIPS(1024))
        assert rep.vectorized
        assert rep.vector_lanes >= 2
