"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_artefact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.artefact == "table1"

    def test_select_defaults(self):
        args = build_parser().parse_args(["select", "gemm"])
        assert args.benchmark == "gemm"
        assert args.platform == "p9-v100"
        assert args.mode == "benchmark"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["select", "gemm", "--mode", "huge"])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.benchmarks == []
        assert args.platform == "p9-v100"
        assert args.mode == "test"
        assert args.format == "text"

    def test_lint_accepts_benchmarks_and_json(self):
        args = build_parser().parse_args(["lint", "syrk", "gemm", "--format", "json"])
        assert args.benchmarks == ["syrk", "gemm"]
        assert args.format == "json"

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])


class TestCommands:
    def test_probe_tlb(self, capsys):
        assert main(["probe", "tlb"]) == 0
        out = capsys.readouterr().out
        assert "1024 TLB entries" in out

    def test_probe_gpu(self, capsys):
        assert main(["probe", "gpu"]) == 0
        assert "L2 193" in capsys.readouterr().out

    def test_probe_epcc(self, capsys):
        assert main(["probe", "epcc"]) == 0
        assert "x160" in capsys.readouterr().out.replace(" ", "")

    def test_table2_artefact(self, capsys):
        assert main(["table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_figure45_artefact(self, capsys):
        assert main(["figure45"]) == 0
        assert "MWP" in capsys.readouterr().out

    def test_select_runs(self, capsys):
        assert main(["select", "atax", "--mode", "test", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "atax_k1" in out and "atax_k2" in out

    def test_select_json_format(self, capsys):
        assert main(["select", "atax", "--mode", "test", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row[0] for row in payload["rows"]] == ["atax_k1", "atax_k2"]

    def test_lint_one_benchmark_clean(self, capsys):
        assert main(["lint", "syrk"]) == 0
        out = capsys.readouterr().out
        assert "syrk" in out
        assert "0 error(s)" in out

    def test_lint_whole_suite_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "24 region(s): 0 error(s)" in out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "gemm", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["region"] == "gemm"
        assert payload[0]["errors"] == 0


class TestDriftCommand:
    def test_drift_defaults(self):
        args = build_parser().parse_args(["drift"])
        assert args.platform == "p9-v100"
        assert args.launches == 96
        assert args.start == 24
        assert args.format == "text"

    def test_drift_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["drift", "--format", "xml"])

    def test_drift_runs_and_reports_json(self, capsys):
        assert main(["drift", "--launches", "60", "--start", "18",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        names = [s["scenario"] for s in payload["scenarios"]]
        assert names == [
            "zero-skew",
            "gpu-optimist",
            "cpu-optimist",
            "gpu-pessimist",
            "transient",
        ]
        control = payload["scenarios"][0]
        assert control["bit_identical"] is True


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.benchmarks == []
        assert args.platform == "p9-v100"
        assert args.mode == "test"
        assert args.output is None
        assert args.format == "text"

    def test_trace_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--format", "xml"])

    def test_trace_text_summary(self, capsys):
        assert main(["trace", "gemm"]) == 0
        out = capsys.readouterr().out
        assert "instrumented sweep: 1 launches" in out
        assert "compile" in out and "dispatch" in out

    def test_trace_json_is_chrome_trace_format(self, capsys):
        assert main(["trace", "gemm", "atax", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"compile", "analyse", "launch", "predict", "dispatch"} <= names
        assert payload["otherData"]["metrics"]["counters"]

    def test_trace_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "gemm", "--format", "json", "-o", str(out)]) == 0
        assert "wrote json trace" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]


class TestReplayCommand:
    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.platform == "p9-v100"
        assert args.launches == 20_000
        assert args.seed == 0
        assert args.capacity == 32
        assert args.utilization == 0.6
        assert args.overload_utilization == 3.0
        assert args.tiny is False
        assert args.scenarios is None
        assert args.output is None
        assert args.format == "text"

    def test_replay_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--format", "xml"])

    def test_replay_runs_and_reports_json(self, capsys, tmp_path):
        out = tmp_path / "replay.json"
        assert main([
            "replay", "--launches", "600", "--format", "json", "-o", str(out),
            "--scenarios", "steady,fault-storm,overload-defer",
        ]) == 0
        assert "wrote replay json report" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["launches"] == 600
        scenarios = [row["scenario"] for row in payload["rows"]]
        assert scenarios == ["steady", "fault-storm", "overload-defer"]

    def test_replay_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            main(["replay", "--launches", "200", "--scenarios", "steady,nope"])


class TestSelfCheckExitCodes:
    """Every subcommand with a self-check must exit non-zero on failure."""

    class _Fake:
        passed = False

        def render(self):
            return "fake report"

        def chrome_json(self):
            return "{}"

        def to_payload(self):
            return {"passed": False}

    def test_faults_artefact_fails_loud(self, monkeypatch, capsys):
        import repro.experiments as ex

        monkeypatch.setattr(ex, "run_faults", lambda: self._Fake())
        assert main(["faults"]) == 1
        assert "self-check FAILED: faults" in capsys.readouterr().err

    def test_trace_fails_loud(self, monkeypatch, capsys):
        import repro.experiments as ex

        monkeypatch.setattr(ex, "run_trace", lambda **kw: self._Fake())
        assert main(["trace", "gemm"]) == 1

    def test_replay_fails_loud(self, monkeypatch, capsys):
        import repro.experiments as ex

        monkeypatch.setattr(ex, "run_replay", lambda **kw: self._Fake())
        assert main(["replay", "--tiny"]) == 1

    def test_drift_fails_loud(self, monkeypatch, capsys):
        import repro.experiments as ex

        monkeypatch.setattr(ex, "run_drift", lambda **kw: self._Fake())
        assert main(["drift"]) == 1
