"""Unit tests for the MCA scoreboard scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.machines import POWER8, POWER9
from repro.mca import MachineOp, schedule_ops, steady_state_cycles, unroll


def op(opcode, dest=-1, srcs=()):
    return MachineOp(opcode, dest, tuple(srcs))


class TestScheduleOps:
    def test_empty_sequence(self):
        res = schedule_ops([], POWER9)
        assert res.total_cycles == 0.0
        assert res.ipc == 0.0

    def test_single_op_latency(self):
        res = schedule_ops([op("fadd", 0)], POWER9)
        assert res.total_cycles == POWER9.latency("fadd")

    def test_dependency_chain_serializes(self):
        # fadd chain of length 4: 4 * latency
        ops = [op("fadd", 0)]
        for i in range(1, 4):
            ops.append(op("fadd", i, (i - 1,)))
        res = schedule_ops(ops, POWER9)
        assert res.total_cycles == 4 * POWER9.latency("fadd")

    def test_independent_ops_overlap(self):
        ops = [op("fadd", i) for i in range(8)]
        res = schedule_ops(ops, POWER9)
        # 2 FP pipes: 8 ops need 4 issue slots, finish = 3 + latency
        assert res.total_cycles < 8 * POWER9.latency("fadd")

    def test_port_contention(self):
        # POWER9 has 2 LS units: 6 independent loads issue over 3 cycles
        ops = [op("load", i) for i in range(6)]
        res = schedule_ops(ops, POWER9)
        assert res.total_cycles == 2 + POWER9.latency("load")

    def test_unpipelined_divides_serialize_on_unit(self):
        # 4 independent fdivs on 2 FP pipes, each occupying latency cycles
        ops = [op("fdiv", i) for i in range(4)]
        res = schedule_ops(ops, POWER9)
        lat = POWER9.latency("fdiv")
        assert res.total_cycles >= 2 * lat  # two rounds per pipe

    def test_dispatch_width_limits_start(self):
        # 32 1-cycle iadds on 3 FX units, 8-wide dispatch
        ops = [op("iadd", i) for i in range(33)]
        res = schedule_ops(ops, POWER9)
        assert res.total_cycles >= 33 / 8  # dispatch-bound lower bound
        assert res.total_cycles >= 33 / 3  # port-bound lower bound

    def test_port_cycles_accounted(self):
        ops = [op("load", 0), op("fadd", 1, (0,)), op("store", -1, (1,))]
        res = schedule_ops(ops, POWER9)
        assert res.port_cycles["LS"] == 2.0
        assert res.port_cycles["FP"] == 1.0

    def test_pressure_in_unit_interval(self):
        ops = [op("fma", i) for i in range(16)]
        res = schedule_ops(ops, POWER9)
        for frac in res.pressure(POWER9).values():
            assert 0.0 <= frac <= 1.0

    def test_bottleneck_names_hot_port(self):
        ops = [op("load", i) for i in range(12)]
        res = schedule_ops(ops, POWER9)
        assert res.bottleneck(POWER9) == "LS"

    def test_latency_override(self):
        ops = [op("load", 0), op("fadd", 1, (0,))]
        base = schedule_ops(ops, POWER9).total_cycles
        slow = schedule_ops(
            ops, POWER9, latency_of=lambda o: 300.0 if o.opcode == "load" else 6.0
        ).total_cycles
        assert slow > base + 200


class TestUnroll:
    def test_copies_multiply_ops(self):
        body = [op("fadd", 0), op("fmul", 1, (0,))]
        assert len(unroll(body, 5)) == 10

    def test_carried_register_creates_chain(self):
        # acc = acc + x : carried on reg 0
        body = [op("fadd", 0, (0,))]
        chain = unroll(body, 8, frozenset({0}))
        res = schedule_ops(chain, POWER9)
        assert res.total_cycles == 8 * POWER9.latency("fadd")

    def test_uncarried_copies_overlap(self):
        body = [op("fadd", 0, (1,))]
        flat = unroll(body, 8)
        res = schedule_ops(flat, POWER9)
        assert res.total_cycles < 8 * POWER9.latency("fadd")

    def test_invalid_copy_count(self):
        with pytest.raises(ValueError):
            unroll([op("fadd", 0)], 0)


class TestSteadyState:
    def test_carried_chain_is_latency_bound(self):
        body = [op("fadd", 0, (0,))]
        cyc = steady_state_cycles(body, POWER9)
        assert cyc == pytest.approx(POWER9.latency("fadd"), rel=0.01)

    def test_independent_body_is_throughput_bound(self):
        # 2 independent fmas per iteration on 2 FP pipes -> ~1 cycle/iter
        body = [op("fma", 0), op("fma", 1)]
        cyc = steady_state_cycles(body, POWER9)
        assert cyc == pytest.approx(1.0, abs=0.3)

    def test_empty_body(self):
        assert steady_state_cycles([], POWER9) == 0.0

    def test_power9_vector_throughput_beats_power8(self):
        # POWER9 has 4 VSX pipes vs POWER8's 2
        body = [op("vfma", i) for i in range(8)]
        p8 = steady_state_cycles(body, POWER8)
        p9 = steady_state_cycles(body, POWER9)
        assert p9 < p8

    @given(n=st.integers(1, 12))
    def test_steady_state_scales_linearly_with_body_size(self, n):
        body = [op("fma", i) for i in range(n)]
        cyc = steady_state_cycles(body, POWER9)
        # 2 FP pipes: n ops take at least n/2 and at most n cycles + slack
        assert n / 2 - 0.6 <= cyc <= n + 1
