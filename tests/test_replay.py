"""Tests for the traffic-replay subsystem (repro.replay).

Covers workload-generator determinism and stream isolation, admission
queue bookkeeping, the zero-chaos differential (a replay is bit-identical
to an equivalent sequential sweep), chaos window detection/recovery,
overload policies, memoization transparency, and the experiment-level
scenario grid.
"""

import json

import pytest

from repro.drift import DriftSentinel, Watchdog
from repro.machines import PLATFORM_P9_V100
from repro.replay import (
    ADMISSION_POLICIES,
    AdmissionConfig,
    AdmissionQueue,
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    WorkloadConfig,
    generate_requests,
    score_run,
)
from repro.replay.workload import build_catalog
from repro.runtime import ExecutionMemo, ModelGuided, OffloadingRuntime
from repro.util import derive_seed


@pytest.fixture(scope="module")
def shared():
    """One memo + policy cache shared by every engine in this module."""
    return {"memo": ExecutionMemo(), "policy": MemoizedPolicy()}


def _engine(cfg: ReplayConfig, shared) -> ReplayEngine:
    return ReplayEngine(cfg, policy=shared["policy"], memo=shared["memo"])


class TestWorkload:
    def test_same_config_same_trace(self):
        cfg = WorkloadConfig(launches=200, seed=42)
        assert generate_requests(cfg) == generate_requests(cfg)

    def test_seed_changes_the_trace(self):
        a = generate_requests(WorkloadConfig(launches=200, seed=1))
        b = generate_requests(WorkloadConfig(launches=200, seed=2))
        assert a != b

    def test_streams_are_isolated_from_the_size_envelope(self):
        # changing the size draw must not reshuffle which kernels are hit
        # or when they arrive: those purposes draw from their own streams
        a = generate_requests(WorkloadConfig(launches=300, seed=3))
        b = generate_requests(
            WorkloadConfig(
                launches=300, seed=3, sizes=(256, 512), size_weights=(0.7, 0.3)
            )
        )
        assert [r.case.region_name for r in a] == [r.case.region_name for r in b]
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.burst for r in a] == [r.burst for r in b]

    def test_golden_derived_seeds(self):
        # pinned SHA-256-derived stream seeds: any change to the stream
        # identity scheme reshuffles every existing seeded trace
        assert derive_seed(0, "workload", "popularity") == 13411657674127139983
        assert derive_seed(0, "workload", "arrival") == 7069965970226900748

    def test_golden_trace_prefix(self):
        # first five requests of the seed-0 default trace, pinned
        requests = generate_requests(WorkloadConfig(launches=5, seed=0))
        assert [(r.case.region_name, r.case.size) for r in requests] == [
            ("3dconv", 512),
            ("3dconv", 256),
            ("corr_std", 512),
            ("gesummv", 256),
            ("corr_corr", 512),
        ]
        assert requests[0].arrival_s == pytest.approx(0.000760291, rel=1e-6)
        assert requests[4].arrival_s == pytest.approx(0.004783143, rel=1e-6)

    def test_zipf_popularity_is_skewed(self):
        requests = generate_requests(WorkloadConfig(launches=4000, seed=0))
        counts: dict[str, int] = {}
        for r in requests:
            counts[r.case.region_name] = counts.get(r.case.region_name, 0) + 1
        top = max(counts.values())
        assert top > 2 * len(requests) / len(counts)  # far above uniform

    def test_arrivals_strictly_increase(self):
        requests = generate_requests(WorkloadConfig(launches=500, seed=8))
        assert all(
            a.arrival_s < b.arrival_s for a, b in zip(requests, requests[1:])
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(launches=0)
        with pytest.raises(ValueError):
            WorkloadConfig(sizes=(256,), size_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            WorkloadConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(burst_factor=0.5)

    def test_catalog_covers_suite_times_sizes(self):
        cases, regions = build_catalog((256, 512))
        assert len(cases) == 2 * len(regions)
        assert all(c.region_name in regions for c in cases)


class TestAdmissionQueue:
    def test_unbounded_admits_everything(self):
        q = AdmissionQueue(AdmissionConfig())
        for i in range(10):
            assert q.decide(float(i)) == "admit"
            q.finish(q.start(float(i)), 100.0)
        assert q.shed == q.degraded == q.deferred == 0

    def test_fifo_start_times_and_wait_accounting(self):
        q = AdmissionQueue(AdmissionConfig())
        s1 = q.start(0.0)
        assert s1 == 0.0
        q.finish(s1, 2.0)
        s2 = q.start(1.0)  # server busy until t=2
        assert s2 == 2.0
        q.finish(s2, 1.0)
        assert q.total_wait_s == 1.0
        assert q.max_wait_s == 1.0
        assert q.server_free_at == 3.0

    def test_depth_drains_finished_service(self):
        q = AdmissionQueue(AdmissionConfig(capacity=2))
        q.finish(q.start(0.0), 1.0)
        q.finish(q.start(0.0), 2.0)
        assert q.depth(0.5) == 2
        assert q.depth(1.5) == 1
        assert q.depth(5.0) == 0
        assert q.max_depth == 2

    def test_reject_policy_sheds_at_capacity(self):
        q = AdmissionQueue(AdmissionConfig(capacity=1, policy="reject"))
        assert q.decide(0.0) == "admit"
        q.finish(q.start(0.0), 10.0)
        assert q.decide(1.0) == "shed"
        assert q.shed == 1
        assert q.decide(20.0) == "admit"  # drained by then

    def test_degrade_policy_reroutes_at_capacity(self):
        q = AdmissionQueue(AdmissionConfig(capacity=1, policy="degrade"))
        q.finish(q.start(0.0), 10.0)
        assert q.decide(1.0) == "degrade"
        assert q.degraded == 1 and q.shed == 0

    def test_defer_parks_then_resumes_in_order(self):
        q = AdmissionQueue(AdmissionConfig(capacity=2, policy="defer"))
        q.finish(q.start(0.0), 10.0)
        q.finish(q.start(0.0), 10.0)
        assert q.decide(1.0) == "defer"
        q.park("first")
        assert q.decide(2.0) == "defer"
        q.park("second")
        assert list(q.resumable(5.0)) == []  # still above resume depth
        assert list(q.resumable(30.0)) == ["first", "second"]
        assert q.resumed == 2 and q.deferred == 2

    def test_defer_overflow_sheds(self):
        q = AdmissionQueue(
            AdmissionConfig(capacity=1, policy="defer", defer_capacity=1)
        )
        q.finish(q.start(0.0), 10.0)
        assert q.decide(1.0) == "defer"
        q.park("parked")
        assert q.decide(2.0) == "shed"  # park buffer full
        assert q.deferred == 1 and q.shed == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(capacity=0)
        with pytest.raises(ValueError):
            AdmissionConfig(policy="drop")
        with pytest.raises(ValueError):
            AdmissionConfig(defer_capacity=0)
        assert AdmissionConfig(capacity=8).effective_resume_depth == 4
        assert AdmissionConfig(capacity=8, resume_depth=2).effective_resume_depth == 2


class TestDifferential:
    def test_zero_chaos_replay_bit_identical_to_sequential_sweep(self, shared):
        """The tentpole invariant: the whole replay apparatus (generator,

        admission bookkeeping, memoization, chaos plumbing at rest) is
        observe-only — every record matches a plain runtime fed the same
        launches at the same simulated times.
        """
        workload = WorkloadConfig(launches=400, seed=11)
        cfg = ReplayConfig(platform=PLATFORM_P9_V100, workload=workload)
        run = _engine(cfg, shared).run()

        runtime = OffloadingRuntime(
            PLATFORM_P9_V100,
            policy=ModelGuided(),
            sentinel=DriftSentinel(),
            watchdog=Watchdog(factor=8.0),
            health_decay_halflife_s=5.0,
            sentinel_stream_by_env=True,
        )
        cases, regions = build_catalog(workload.sizes)
        for region in regions.values():
            runtime.compile_region(region)
        baseline = []
        for request in generate_requests(workload, cases):
            if request.arrival_s > runtime.clock.now:
                runtime.clock.advance(request.arrival_s - runtime.clock.now)
            baseline.append(
                runtime.launch(request.case.region_name, request.case.env_dict())
            )

        assert len(baseline) == len(run.records) == 400
        assert baseline == run.records
        assert all(r.drift is None for r in run.records)

    def test_memoized_rerun_is_identical_and_actually_hits(self, shared):
        workload = WorkloadConfig(launches=150, seed=9)
        cfg = ReplayConfig(platform=PLATFORM_P9_V100, workload=workload)
        first = _engine(cfg, shared).run()
        hits_before = shared["policy"].hits
        second = _engine(cfg, shared).run()
        assert shared["policy"].hits > hits_before
        assert first.records == second.records
        # cache hits return the *identical* prediction objects
        assert all(
            a.prediction is b.prediction
            for a, b in zip(first.records, second.records)
        )


class TestChaos:
    def _window(self, requests, kind, lo, hi, **kwargs):
        return ChaosWindow(
            name=kind,
            kind=kind,
            start_s=requests[lo].arrival_s,
            stop_s=requests[hi].arrival_s,
            **kwargs,
        )

    def test_schedule_rejects_duplicate_names(self):
        w = ChaosWindow(name="a", kind="fault-storm", start_s=0.0, stop_s=1.0)
        with pytest.raises(ValueError):
            ChaosSchedule(windows=(w, w))

    def test_fault_storm_detected_and_recovered(self, shared):
        workload = WorkloadConfig(launches=600, seed=5)
        requests = generate_requests(workload)
        window = self._window(
            requests, "fault-storm", 240, 360, probability=0.9
        )
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            chaos=ChaosSchedule(windows=(window,), seed=5),
        )
        run = _engine(cfg, shared).run(requests=requests)
        score = score_run(
            run, recovery_margin_s=window.stop_s - window.start_s
        )
        w = score.window("fault-storm")
        assert w.detected and w.recovered
        assert 0.0 <= w.ttd_s <= window.stop_s - window.start_s
        assert w.ttr_s >= 0.0
        assert score.fault_events > 0

    def test_chaos_only_fires_inside_its_window(self, shared):
        workload = WorkloadConfig(launches=300, seed=6)
        requests = generate_requests(workload)
        window = self._window(requests, "brownout", 100, 200)
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            chaos=ChaosSchedule(windows=(window,), seed=6),
        )
        run = _engine(cfg, shared).run(requests=requests)
        for outcome in run.outcomes:
            record = outcome.record
            if record is None or not record.fault_events:
                continue
            assert window.start_s <= outcome.start_s < window.stop_s

    def test_adding_a_far_window_never_reshuffles_existing_draws(self, shared):
        # stream isolation at the schedule level: composing a window that
        # never activates leaves every existing record bit-identical
        workload = WorkloadConfig(launches=300, seed=13)
        requests = generate_requests(workload)
        storm = self._window(
            requests, "fault-storm", 100, 200, probability=0.5
        )
        far = ChaosWindow(
            name="late-link",
            kind="link-degraded",
            start_s=1e9,
            stop_s=2e9,
            probability=0.5,
        )
        runs = []
        for windows in ((storm,), (storm, far)):
            cfg = ReplayConfig(
                platform=PLATFORM_P9_V100,
                workload=workload,
                chaos=ChaosSchedule(windows=windows, seed=13),
            )
            runs.append(_engine(cfg, shared).run(requests=requests))
        assert runs[0].records == runs[1].records

    def test_hw_drift_detected_by_the_sentinel(self, shared):
        workload = WorkloadConfig(launches=1500, seed=4)
        requests = generate_requests(workload)
        window = self._window(requests, "hw-drift", 600, 900, gpu_scale=6.0)
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            chaos=ChaosSchedule(windows=(window,), seed=4),
        )
        run = _engine(cfg, shared).run(requests=requests)
        score = score_run(
            run, recovery_margin_s=window.stop_s - window.start_s
        )
        w = score.window("hw-drift")
        assert w.detected, "sentinel never flagged the dilated device"
        assert w.recovered, "sentinel never re-calibrated after the window"
        assert run.sentinel.transitions  # timestamped on the sim clock


class TestOverload:
    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    def test_bounded_depth_and_visible_shedding(self, policy, shared):
        workload = WorkloadConfig(
            launches=400, seed=3, mean_interarrival_s=1e-6
        )
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            admission=AdmissionConfig(
                capacity=8, policy=policy, defer_capacity=16
            ),
        )
        run = _engine(cfg, shared).run()
        score = score_run(run)
        assert score.max_queue_depth <= 8
        counts = run.outcome_counts()
        assert sum(counts.values()) == 400  # every request accounted for
        if policy == "reject":
            assert score.shed_fraction > 0.0
            assert score.degraded_fraction == 0.0
        elif policy == "degrade":
            assert score.degraded_fraction > 0.0
            assert score.shed_fraction == 0.0
            degraded = [o for o in run.outcomes if o.outcome == "degraded"]
            assert degraded and all(
                o.record.admission is not None for o in degraded
            )
        else:  # defer
            assert score.deferred > 0 and score.resumed > 0

    def test_outcomes_return_in_request_order(self, shared):
        workload = WorkloadConfig(
            launches=200, seed=3, mean_interarrival_s=1e-6
        )
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=workload,
            admission=AdmissionConfig(capacity=4, policy="defer"),
        )
        run = _engine(cfg, shared).run()
        assert [o.index for o in run.outcomes] == list(range(200))


class TestEngine:
    def test_metrics_and_conservation(self, shared):
        workload = WorkloadConfig(launches=120, seed=21)
        cfg = ReplayConfig(platform=PLATFORM_P9_V100, workload=workload)
        run = _engine(cfg, shared).run()
        snap = run.metrics.snapshot()
        admitted = sum(
            v
            for k, v in snap["counters"].items()
            if k.startswith("replay_requests_total")
        )
        assert admitted == 120
        assert any(
            k.startswith("dispatch_overhead_seconds") for k in snap["quantiles"]
        )
        assert run.horizon_s >= run.requests[-1].arrival_s

    def test_multi_device_replay_smoke(self, shared):
        cfg = ReplayConfig(
            platform=PLATFORM_P9_V100,
            workload=WorkloadConfig(launches=120, seed=2),
            multi_device=True,
        )
        run = ReplayEngine(cfg, memo=shared["memo"]).run()
        assert len(run.records) == 120
        score = score_run(run)
        assert score.launches == 120
        assert 0.0 <= score.overall_accuracy <= 1.0


class TestExperiment:
    def test_small_grid_passes_and_serializes(self, shared):
        from repro.experiments import run_replay

        result = run_replay(
            launches=1000,
            scenarios=("steady", "fault-storm", "overload-degrade"),
        )
        assert result.passed
        assert result.get("fault-storm").score.fault_events > 0
        assert result.get("overload-degrade").score.degraded_fraction > 0.0
        payload = result.to_payload()
        assert json.loads(json.dumps(payload)) == payload
        assert result.render()

    def test_unknown_scenario_rejected(self):
        from repro.experiments import run_replay

        with pytest.raises(ValueError):
            run_replay(launches=100, scenarios=("steady", "meteor-strike"))
        with pytest.raises(ValueError):
            run_replay(launches=100, scenarios=("fault-storm",))
