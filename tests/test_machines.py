"""Unit tests for machine descriptors, registry and topology."""

import pytest

from repro.machines import (
    GENERIC_X86,
    NVLINK2,
    PCIE3_X16,
    PLATFORM_P8_K80,
    PLATFORM_P9_V100,
    POWER8,
    POWER9,
    TESLA_K80,
    TESLA_P100,
    TESLA_V100,
    AcceleratorSlot,
    CPUDescriptor,
    Platform,
    cpu_by_name,
    gpu_by_name,
    interconnect_by_name,
    list_platforms,
    platform_by_name,
)


class TestCPUDescriptor:
    def test_paper_host_configuration(self):
        # both experimental hosts: 20 cores x SMT8 at 3 GHz (Section III)
        for cpu in (POWER8, POWER9):
            assert cpu.hw_threads == 160
            assert cpu.frequency_ghz == 3.0

    def test_table2_constants(self):
        assert POWER9.tlb_entries == 1024
        assert POWER9.tlb_miss_penalty == 14
        assert POWER9.loop_overhead_per_iter == 4
        assert POWER9.par_schedule_static_cycles == 10154
        assert POWER9.sync_cycles == 4000
        assert POWER9.par_startup_cycles == 3000

    def test_power9_has_broader_vector_support(self):
        # the Section III CORR explanation: VSX-3 outer-loop vectorization
        assert POWER9.outer_loop_vectorization
        assert not POWER8.outer_loop_vectorization
        assert POWER9.ports["VSX"] > POWER8.ports["VSX"]

    def test_vector_lanes(self):
        assert POWER9.vector_lanes(4) == 4  # 128-bit / f32
        assert POWER9.vector_lanes(8) == 2
        assert GENERIC_X86.vector_lanes(4) == 8  # 256-bit AVX

    def test_latency_lookup(self):
        assert POWER9.latency("fma") == 5 or POWER9.latency("fma") == 6
        with pytest.raises(KeyError):
            POWER9.latency("quantum_op")

    def test_smt_throughput_monotone(self):
        vals = [POWER9.smt_throughput(t) for t in (1, 2, 4, 8)]
        assert vals == sorted(vals)
        assert vals[0] == 1.0
        with pytest.raises(ValueError):
            POWER9.smt_throughput(0)

    def test_team_overhead_scale(self):
        assert POWER9.team_overhead_scale(8) == 1.0
        assert POWER9.team_overhead_scale(1) == 1.0
        assert POWER9.team_overhead_scale(160) > 50
        with pytest.raises(ValueError):
            POWER9.team_overhead_scale(0)

    def test_cycles_to_seconds(self):
        assert POWER9.cycles_to_seconds(3e9) == pytest.approx(1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CPUDescriptor(
                name="bad",
                cores=0,
                smt=1,
                frequency_ghz=1.0,
                dispatch_width=2,
                ports={"FX": 1},
                latencies={},
                vector_width_bits=128,
                vector_pipes=1,
                has_fma=False,
                cacheline_bytes=64,
                l1_kib=32,
                l2_kib=256,
                l3_kib_per_core=1024,
                l1_latency=3,
                l2_latency=10,
                l3_latency=30,
                dram_latency=300,
                dram_bw_gbs=50,
                tlb_entries=64,
                tlb_miss_penalty=10,
                page_bytes=4096,
                par_startup_cycles=1,
                par_schedule_static_cycles=1,
                sync_cycles=1,
                loop_overhead_per_iter=1,
            )

    def test_descriptor_is_immutable(self):
        with pytest.raises(Exception):
            POWER9.cores = 2  # type: ignore[misc]


class TestGPUDescriptor:
    def test_table3_v100(self):
        g = TESLA_V100
        assert g.num_sms == 80
        assert g.total_cores == 5120
        assert g.mem_bandwidth_gbs == 900.0
        assert g.max_warps_per_sm == 64
        assert g.max_threads_per_sm == 2048
        assert g.l1_latency == 28
        assert g.l2_latency == 193

    def test_k80_paper_bandwidth(self):
        # Section III quotes the K80's 480 GB/s peak
        assert TESLA_K80.mem_bandwidth_gbs == 480.0

    def test_generational_ordering(self):
        # newer generations: more bandwidth, lower latency, faster launch
        gens = (TESLA_K80, TESLA_P100, TESLA_V100)
        bw = [g.mem_bandwidth_gbs for g in gens]
        assert bw == sorted(bw)
        assert TESLA_V100.fp_latency < TESLA_K80.fp_latency
        assert TESLA_V100.launch_overhead_us < TESLA_K80.launch_overhead_us

    def test_peak_gflops(self):
        assert TESLA_V100.peak_gflops_fp32 == pytest.approx(15667.2, rel=0.01)

    def test_warps_per_block(self):
        assert TESLA_V100.warps_per_block(128) == 4
        assert TESLA_V100.warps_per_block(100) == 4
        assert TESLA_V100.warps_per_block(32) == 1


class TestInterconnect:
    def test_nvlink_faster_than_pcie(self):
        assert NVLINK2.bandwidth_gbs > 5 * PCIE3_X16.bandwidth_gbs
        assert NVLINK2.latency_us < PCIE3_X16.latency_us

    def test_transfer_seconds(self):
        one_gb = NVLINK2.transfer_seconds(10**9)
        assert one_gb == pytest.approx(1 / 68 + 6e-6, rel=0.01)

    def test_zero_bytes_free(self):
        assert PCIE3_X16.transfer_seconds(0) == 0.0

    def test_small_transfers_latency_bound(self):
        tiny = PCIE3_X16.transfer_seconds(8)
        assert tiny >= PCIE3_X16.latency_us * 1e-6

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVLINK2.transfer_seconds(-1)


class TestRegistry:
    def test_lookups(self):
        assert cpu_by_name("POWER9") is POWER9
        assert gpu_by_name("V100") is TESLA_V100
        assert interconnect_by_name("nvlink2") is NVLINK2
        assert platform_by_name("p9-v100") is PLATFORM_P9_V100
        assert platform_by_name("P8-K80") is PLATFORM_P8_K80

    def test_unknown_names(self):
        for fn in (cpu_by_name, gpu_by_name, interconnect_by_name, platform_by_name):
            with pytest.raises(KeyError):
                fn("does-not-exist")

    def test_list_platforms(self):
        assert list_platforms() == ["p8-k80", "p9-v100"]


class TestTopology:
    def test_platform_accessors(self):
        assert PLATFORM_P9_V100.gpu is TESLA_V100
        assert PLATFORM_P9_V100.bus is NVLINK2
        assert PLATFORM_P8_K80.host is POWER8

    def test_platform_without_accelerator(self):
        bare = Platform("host-only", POWER9)
        with pytest.raises(ValueError):
            bare.gpu
        with pytest.raises(ValueError):
            bare.bus

    def test_render_figure1(self):
        text = PLATFORM_P9_V100.render()
        assert "host" in text
        assert "accelerator" in text
        assert "NVLink 2.0" in text
        assert "Tesla V100" in text

    def test_multi_accelerator(self):
        plat = Platform(
            "dual",
            POWER9,
            (
                AcceleratorSlot(TESLA_V100, NVLINK2),
                AcceleratorSlot(TESLA_K80, PCIE3_X16),
            ),
        )
        assert plat.gpu is TESLA_V100  # primary slot
        assert plat.render().count("accelerator") == 2
