"""Unit + property tests for statistics and table rendering."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    correlation,
    geomean,
    mean_absolute_log_error,
    render_kv,
    render_table,
    summarize_ratio,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.5]) == 3.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, vals):
        g = geomean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=10),
           st.floats(0.1, 10.0))
    def test_scale_invariance(self, vals, k):
        assert geomean([v * k for v in vals]) == pytest.approx(
            geomean(vals) * k, rel=1e-6
        )


class TestErrors:
    def test_male_zero_on_perfect(self):
        assert mean_absolute_log_error([1, 10, 100], [1, 10, 100]) == 0.0

    def test_male_one_decade(self):
        assert mean_absolute_log_error([10.0], [1.0]) == pytest.approx(1.0)

    def test_male_symmetric(self):
        a = mean_absolute_log_error([10.0], [1.0])
        b = mean_absolute_log_error([1.0], [10.0])
        assert a == pytest.approx(b)

    def test_male_input_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_log_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_absolute_log_error([], [])
        with pytest.raises(ValueError):
            mean_absolute_log_error([0.0], [1.0])

    def test_correlation_perfect(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [-1, -2, -3]) == pytest.approx(-1.0)

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            correlation([1.0], [1.0])
        with pytest.raises(ValueError):
            correlation([1, 1, 1], [1, 2, 3])

    def test_summarize_ratio(self):
        out = summarize_ratio([1.0, 4.0])
        assert out["min"] == 1.0
        assert out["max"] == 4.0
        assert out["geomean"] == pytest.approx(2.0)


class TestErgonomics:
    """Any iterable is accepted; errors name the offending index/value."""

    def test_generators_accepted_everywhere(self):
        assert geomean(v for v in (2.0, 8.0)) == pytest.approx(4.0)
        assert mean_absolute_log_error(
            (p for p in (1.0, 10.0)), (a for a in (1.0, 10.0))
        ) == 0.0
        assert correlation(
            (x for x in (1.0, 2.0, 3.0)), (y for y in (2.0, 4.0, 6.0))
        ) == pytest.approx(1.0)
        out = summarize_ratio(v for v in (1.0, 4.0))
        assert out["min"] == 1.0 and out["max"] == 4.0

    def test_geomean_names_offender(self):
        with pytest.raises(ValueError, match=r"values\[2\] = 0\.0"):
            geomean([1.0, 2.0, 0.0])

    def test_male_names_offending_side_and_index(self):
        with pytest.raises(ValueError, match=r"predicted\[1\] = -1\.0"):
            mean_absolute_log_error([1.0, -1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match=r"actual\[0\] = 0\.0"):
            mean_absolute_log_error([1.0, 2.0], [0.0, 1.0])

    def test_length_mismatch_reports_both_lengths(self):
        with pytest.raises(ValueError, match="1 predicted vs 2 actual"):
            mean_absolute_log_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="3 xs vs 2 ys"):
            correlation([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_correlation_names_degenerate_input(self):
        with pytest.raises(ValueError, match="needs >= 2 points, got 1"):
            correlation([1.0], [1.0])
        with pytest.raises(ValueError, match="xs has zero variance"):
            correlation([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="ys has zero variance"):
            correlation([1.0, 2.0], [3.0, 3.0])


class TestTables:
    def test_render_table_basic(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert all(len(l) == len(lines[0]) for l in lines)
        assert "| a " in text and "22" in text

    def test_render_table_title(self):
        text = render_table(["x"], [["y"]], title="My Title")
        assert text.startswith("My Title")

    def test_float_formatting(self):
        text = render_table(["v"], [[3.14159], [1e-6], [12345.6]])
        assert "3.14" in text
        assert "1e-06" in text

    def test_render_kv(self):
        text = render_kv([("alpha", 1), ("beta-long", 2.5)], title="T")
        assert text.startswith("T")
        assert "alpha" in text and "2.50" in text

    def test_ragged_rows_padded(self):
        text = render_table(["a", "b", "c"], [["x"], ["y", 1, 2]])
        assert "x" in text  # no crash, padded
