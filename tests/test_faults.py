"""Tests for the fault-tolerance subsystem (repro.faults).

Covers injector determinism under a fixed seed, retry-then-fallback
sequencing, circuit-breaker open/half-open/close transitions, the health
penalty feedback into selection, and that fault-free runs are
bit-identical to the plain runtime.
"""

from types import SimpleNamespace

import math
import pytest

from repro.faults import (
    BreakerState,
    CircuitBreaker,
    DeadDevice,
    DeviceMemoryError,
    FaultInjector,
    FootprintOOM,
    LaunchContext,
    ProbabilisticFault,
    RetryPolicy,
    ScheduledFault,
    TransferError,
    TransientDeviceError,
    region_footprint_bytes,
    scenario_by_name,
)
from repro.machines import (
    NVLINK2,
    PCIE3_X16,
    POWER9,
    AcceleratorSlot,
    Platform,
    PLATFORM_P9_V100,
    TESLA_K80,
    TESLA_V100,
)
from repro.runtime import (
    AlwaysGPU,
    LaunchRecord,
    ModelGuided,
    MultiDeviceRuntime,
    OffloadingRuntime,
)

from .kernels import build_gemm, build_vecadd

ENV = {"ni": 512, "nj": 512, "nk": 512}
#: benchmark-dataset GEMM — big enough that the model offloads it
ENV_BIG = {"ni": 9600, "nj": 9600, "nk": 9600}


def _ctx(launch: int, attempt: int = 1, footprint: int = 0) -> LaunchContext:
    return LaunchContext(
        device_name="Tesla V100 via NVLink2",
        kind="gpu",
        launch_index=launch,
        attempt=attempt,
        footprint_bytes=footprint,
        memory_bytes=16 << 30,
    )


class TestInjector:
    def test_deterministic_under_fixed_seed(self):
        a = scenario_by_name("flaky-transfer", seed=7)
        b = scenario_by_name("flaky-transfer", seed=7)
        seq_a = [type(a.check(_ctx(i))).__name__ for i in range(64)]
        seq_b = [type(b.check(_ctx(i))).__name__ for i in range(64)]
        assert seq_a == seq_b
        assert "TransferError" in seq_a  # the plan does fire at p=0.25

    def test_reset_replays_the_same_faults(self):
        inj = scenario_by_name("flaky-transfer", seed=3)
        first = [inj.check(_ctx(i)) is not None for i in range(32)]
        inj.reset()
        again = [inj.check(_ctx(i)) is not None for i in range(32)]
        assert first == again

    def test_footprint_trigger_is_deterministic(self):
        inj = FaultInjector([FootprintOOM(limit_bytes=100)])
        assert inj.check(_ctx(0, footprint=99)) is None
        err = inj.check(_ctx(1, footprint=101))
        assert isinstance(err, DeviceMemoryError)
        assert not err.retryable

    def test_scheduled_trigger_targets_launch_and_attempt(self):
        inj = FaultInjector(
            [ScheduledFault(TransferError, launches=(2,), attempts=(1,))]
        )
        assert inj.check(_ctx(0)) is None
        assert isinstance(inj.check(_ctx(2, attempt=1)), TransferError)
        assert inj.check(_ctx(2, attempt=2)) is None

    def test_device_substring_filter(self):
        inj = FaultInjector([DeadDevice(device="K80")])
        assert inj.check(_ctx(0)) is None  # V100 context does not match

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ProbabilisticFault(probability=1.5)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="dead-gpu"):
            scenario_by_name("nope")

    def test_region_footprint_counts_each_array_once(self):
        gemm = build_gemm()
        # A + B + C at 512x512 f32: inout C counted once, not twice
        assert region_footprint_bytes(gemm, ENV) == 3 * 512 * 512 * 4


class TestStreamIsolation:
    """Per-(stream label, device) RNG substreams survive plan composition."""

    def test_flaky_transfer_golden_fault_pattern(self):
        # pinned draw sequence: any change to the stream derivation
        # scheme invalidates every golden fault sequence in the repo
        inj = scenario_by_name("flaky-transfer", seed=7)
        pattern = "".join(
            "X" if inj.check(_ctx(i)) else "." for i in range(24)
        )
        assert pattern == ".X...X.........X...X...X"

    def test_adding_a_labelled_trigger_preserves_existing_draws(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class NeverFires(ProbabilisticFault):
            # draws from its own substream on every check, never fires
            stream_label: str = "never-fires"

        base = FaultInjector(
            [ProbabilisticFault(TransferError, probability=0.25)], seed=7
        )
        extended = FaultInjector(
            [
                NeverFires(TransferError, probability=0.0),
                ProbabilisticFault(TransferError, probability=0.25),
            ],
            seed=7,
        )
        seq_a = [base.check(_ctx(i)) is not None for i in range(64)]
        seq_b = [extended.check(_ctx(i)) is not None for i in range(64)]
        assert seq_a == seq_b

    def test_streams_isolated_per_device(self):
        def k80_ctx(i):
            return LaunchContext(
                device_name="Tesla K80 via PCIe3",
                kind="gpu",
                launch_index=i,
                attempt=1,
                footprint_bytes=0,
                memory_bytes=12 << 30,
            )

        solo = scenario_by_name("flaky-transfer", seed=7)
        solo_seq = [solo.check(_ctx(i)) is not None for i in range(32)]
        mixed = scenario_by_name("flaky-transfer", seed=7)
        mixed_seq = []
        for i in range(32):
            mixed.check(k80_ctx(i))  # interleaved draws on another device
            mixed_seq.append(mixed.check(_ctx(i)) is not None)
        assert solo_seq == mixed_seq


class TestCircuitBreaker:
    def test_open_half_open_close_transitions(self):
        br = CircuitBreaker(failure_threshold=2, cooldown_launches=3)
        assert br.allows()
        br.record_failure()
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        assert br.state is BreakerState.OPEN and not br.allows()
        for _ in range(3):
            assert br.state is not BreakerState.HALF_OPEN
            br.on_launch()
        assert br.state is BreakerState.HALF_OPEN and br.allows()
        br.record_success()  # probe succeeded
        assert br.state is BreakerState.CLOSED
        assert br.transitions == ["open", "half-open", "closed"]

    def test_half_open_probe_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_launches=1)
        br.record_failure()
        br.on_launch()
        assert br.state is BreakerState.HALF_OPEN
        br.record_failure()
        assert br.state is BreakerState.OPEN

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state is BreakerState.CLOSED


def _runtime(policy, injector, **kw):
    rt = OffloadingRuntime(
        PLATFORM_P9_V100, policy=policy, injector=injector, **kw
    )
    rt.compile_region(build_gemm())
    return rt


class TestResilientDispatch:
    def test_retry_then_success_sequencing(self):
        inj = FaultInjector(
            [ScheduledFault(TransientDeviceError, launches=(0,), attempts=(1,))]
        )
        rt = _runtime(AlwaysGPU(), inj)
        rec = rt.launch("gemm", ENV)
        assert rec.target == "gpu" and rec.requested_target == "gpu"
        assert rec.attempts == 2 and len(rec.fault_events) == 1
        assert rec.fallback is None
        assert rec.overhead_seconds == pytest.approx(rt.retry.delay(1))
        assert rec.executed_seconds == pytest.approx(
            rec.gpu_seconds + rec.overhead_seconds
        )
        assert rt.clock.now == pytest.approx(rt.retry.delay(1))

    def test_retries_exhausted_falls_back_to_host(self):
        inj = FaultInjector([ScheduledFault(TransferError, launches=(0,))])
        rt = _runtime(AlwaysGPU(), inj)
        rt.health.breaker.failure_threshold = 10  # keep the breaker out of it
        rec = rt.launch("gemm", ENV)
        assert rec.target == "cpu" and rec.requested_target == "gpu"
        assert rec.fallback == "retries-exhausted"
        assert rec.attempts == rt.retry.max_attempts
        assert len(rec.fault_events) == rt.retry.max_attempts
        assert rec.executed_seconds == pytest.approx(
            rec.cpu_seconds + rt.retry.total_backoff(rt.retry.max_attempts - 1)
        )
        # a later untouched launch offloads normally again
        clean = rt.launch("gemm", ENV)
        assert clean.target == "gpu" and clean.attempts == 1

    def test_oom_is_not_retried(self):
        inj = FaultInjector([FootprintOOM(limit_bytes=1)])
        rt = _runtime(AlwaysGPU(), inj)
        rec = rt.launch("gemm", ENV)
        assert rec.target == "cpu"
        assert rec.fallback == "non-retryable-fault"
        assert rec.attempts == 1 and rec.overhead_seconds == 0.0
        assert rec.fault_events[0].error_type == "DeviceMemoryError"

    def test_dead_gpu_breaker_stops_routing_within_n_plus_one(self):
        rt = _runtime(AlwaysGPU(), scenario_by_name("dead-gpu"))
        threshold = rt.health.breaker.failure_threshold
        records = [rt.launch("gemm", ENV) for _ in range(10)]
        # every launch completes on the host, no unhandled exceptions
        assert all(r.target == "cpu" for r in records)
        # the breaker trips within N+1 launches, after which the dead
        # device is skipped without any dispatch attempts
        tripped = next(i for i, r in enumerate(records) if r.attempts == 0)
        assert tripped <= threshold
        assert records[tripped].fallback == "breaker-open"
        # a half-open probe re-tests the device once after the cooldown...
        probe_at = next(
            i for i in range(tripped, len(records)) if records[i].attempts
        )
        assert tripped < probe_at <= tripped + rt.health.breaker.cooldown_launches
        probe = records[probe_at]
        assert probe.attempts == 1 and probe.target == "cpu"
        # ...fails, and the breaker re-opens immediately
        assert rt.health.breaker.state is not BreakerState.CLOSED
        assert records[probe_at + 1].attempts == 0

    def test_health_penalty_reroutes_model_guided(self):
        rt = _runtime(ModelGuided(), FaultInjector((), seed=0))
        baseline = rt.launch("gemm", ENV_BIG)
        assert baseline.target == "gpu"  # benchmark-size gemm offloads
        rt.health.penalty_weight = 1e12
        rt.health.failure_ewma = 0.5  # pretend the card has been flaky
        rec = rt.launch("gemm", ENV_BIG)
        assert rec.target == "cpu" and rec.requested_target == "gpu"
        assert rec.fallback == "health-penalty"
        assert rec.attempts == 0  # never dispatched to the accelerator

    def test_flaky_runs_are_seed_deterministic(self):
        def trace(seed):
            rt = _runtime(AlwaysGPU(), scenario_by_name("flaky-transfer", seed=seed))
            return [
                (r.target, r.attempts, r.fallback, len(r.fault_events))
                for r in (rt.launch("gemm", ENV) for _ in range(12))
            ]

        assert trace(11) == trace(11)


class TestFaultFreeIdentity:
    def test_records_bit_identical_to_plain_runtime(self):
        plain = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        guarded = OffloadingRuntime(
            PLATFORM_P9_V100,
            policy=ModelGuided(),
            injector=scenario_by_name("fault-free"),
        )
        for rt in (plain, guarded):
            rt.compile_region(build_gemm())
            rt.compile_region(build_vecadd())
        for name, env in (("gemm", ENV), ("vecadd", {"n": 1 << 20})):
            a = plain.launch(name, env)
            b = guarded.launch(name, env)
            assert a.cpu_seconds == b.cpu_seconds
            assert a.gpu_seconds == b.gpu_seconds
            assert a.target == b.target
            assert a.executed_seconds == b.executed_seconds
            assert b.fault_events == () and b.fallback is None
            assert b.overhead_seconds == 0.0


class TestRecordGuards:
    def _rec(self, cpu, gpu, prediction=None):
        return LaunchRecord(
            region_name="r",
            target="cpu",
            policy_name="always-cpu",
            prediction=prediction,
            cpu_seconds=cpu,
            gpu_seconds=gpu,
            executed_seconds=cpu,
        )

    def test_true_speedup_guards_zero_and_nonfinite(self):
        assert math.isnan(self._rec(1.0, 0.0).true_speedup)
        assert math.isnan(self._rec(1.0, float("inf")).true_speedup)
        assert math.isnan(self._rec(float("nan"), 1.0).true_speedup)
        assert self._rec(2.0, 1.0).true_speedup == pytest.approx(2.0)

    def test_predicted_speedup_guards_zero_and_nonfinite(self):
        fake = SimpleNamespace(
            cpu=SimpleNamespace(seconds=1.0), gpu=SimpleNamespace(seconds=0.0)
        )
        assert math.isnan(self._rec(1.0, 1.0, fake).predicted_speedup)
        assert self._rec(1.0, 1.0).predicted_speedup is None


DUAL = Platform(
    "P9 + V100/NVLink + K80/PCIe",
    POWER9,
    (
        AcceleratorSlot(TESLA_V100, NVLINK2),
        AcceleratorSlot(TESLA_K80, PCIE3_X16),
    ),
)


class TestMultiDeviceResilience:
    def _multi(self, injector=None):
        rt = MultiDeviceRuntime(DUAL, injector=injector)
        rt.compile_region(build_gemm())
        return rt

    def test_fault_free_identical_to_plain(self):
        plain = self._multi()
        guarded = self._multi(scenario_by_name("fault-free"))
        a = plain.launch("gemm", ENV)
        b = guarded.launch("gemm", ENV)
        assert a.chosen == b.chosen
        assert a.executed_seconds == b.executed_seconds
        assert b.executed_device == b.chosen and b.fallback is None

    def test_dead_primary_fails_over_to_next_device(self):
        rt = self._multi(
            FaultInjector([DeadDevice(device="V100")], seed=0)
        )
        records = [rt.launch("gemm", ENV_BIG) for _ in range(8)]
        v100 = next(n for n in rt.health if "V100" in n)
        # every launch completes off the dead card
        assert all("V100" not in r.executed_device for r in records)
        # the first failover carries provenance
        assert records[0].fell_back and records[0].fault_events
        # once the breaker opens, selection itself avoids the dead device
        assert rt.health[v100].breaker.state is not BreakerState.CLOSED
        assert any("V100" not in r.chosen for r in records)

    def test_all_accelerators_dead_lands_on_host(self):
        rt = self._multi(FaultInjector([DeadDevice()], seed=0))
        rec = rt.launch("gemm", ENV_BIG)
        assert rec.executed_device == rt._host.name
        assert rec.fell_back


class TestRetryPolicyProperties:
    """Property-style checks for the hardened backoff arithmetic."""

    def test_defaults_reproduce_historical_delays(self):
        retry = RetryPolicy()
        assert retry.delay(1) == 1e-3
        assert retry.delay(2) == 2e-3
        assert retry.total_backoff(2) == 3e-3

    def test_jitter_free_delays_monotone_and_clamped(self):
        retry = RetryPolicy(max_attempts=64, max_delay_s=0.05)
        delays = [retry.delay(k) for k in range(1, 65)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))
        assert max(delays) == 0.05  # clamp reached and never exceeded

    def test_jitter_bounded_and_applied_after_clamp(self):
        retry = RetryPolicy(max_delay_s=0.05, jitter=0.5, seed=7)
        for attempt in range(1, 40):
            delay = retry.delay(attempt)
            clamped = min(1e-3 * 2.0 ** (attempt - 1), 0.05)
            assert clamped <= delay <= clamped * 1.5

    def test_jitter_deterministic_for_fixed_seed(self):
        a = RetryPolicy(jitter=0.3, seed=11)
        b = RetryPolicy(jitter=0.3, seed=11)
        other = RetryPolicy(jitter=0.3, seed=12)
        sequence = [a.delay(k) for k in range(1, 20)]
        assert sequence == [b.delay(k) for k in range(1, 20)]
        assert sequence != [other.delay(k) for k in range(1, 20)]

    def test_huge_attempt_counts_do_not_overflow(self):
        # 2**1e6 overflows a float; both paths must saturate, not raise
        unclamped = RetryPolicy()
        assert unclamped.delay(10_000) == math.inf
        assert unclamped.total_backoff(10**6) == math.inf
        clamped = RetryPolicy(max_delay_s=0.05)
        assert clamped.delay(10_000) == 0.05
        total = clamped.total_backoff(10**6)
        assert math.isfinite(total)
        # the closed-form tail matches attempt-count * clamp asymptotics
        assert total == pytest.approx(10**6 * 0.05, rel=1e-3)

    def test_constant_backoff_closed_form(self):
        retry = RetryPolicy(backoff_factor=1.0, backoff_base_s=2e-3)
        assert retry.total_backoff(10**9) == pytest.approx(10**9 * 2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestHealthDecay:
    """Simulated-time decay of the DeviceHealth penalty."""

    def _err(self):
        return TransientDeviceError(
            "boom", device_name="gpu0", launch_index=0, attempt=1
        )

    def test_no_clock_keeps_historical_behaviour(self):
        from repro.faults import DeviceHealth

        health = DeviceHealth("gpu0")
        health.record_failure(self._err())
        before = health.failure_ewma
        assert health.penalty() == 1.0 + 4.0 * before
        assert health.failure_ewma == before  # penalty() must not decay

    def test_halflife_halves_failure_weight(self):
        from repro.faults import DeviceHealth, SimulatedClock

        clock = SimulatedClock()
        health = DeviceHealth(
            "gpu0", clock=clock, decay_halflife_s=10.0
        )
        health.record_failure(self._err())
        ewma = health.failure_ewma
        clock.advance(10.0)  # exactly one half-life
        assert health.penalty() == pytest.approx(1.0 + 4.0 * ewma / 2)
        clock.advance(20.0)  # two more half-lives
        assert health.penalty() == pytest.approx(1.0 + 4.0 * ewma / 8)

    def test_backwards_clock_raises(self):
        from repro.faults import DeviceHealth, SimulatedClock

        clock = SimulatedClock(start=5.0)
        health = DeviceHealth("gpu0", clock=clock, decay_halflife_s=1.0)
        health.record_failure(self._err())
        clock.now = 1.0  # simulated clock tampered with
        with pytest.raises(ValueError, match="monotonic"):
            health.penalty()

    def test_long_gap_decays_penalty_to_unity(self):
        from repro.faults import DeviceHealth, SimulatedClock

        clock = SimulatedClock()
        health = DeviceHealth("gpu0", clock=clock, decay_halflife_s=5.0)
        for _ in range(3):
            health.record_failure(self._err())
        assert health.penalty() > 2.0
        clock.advance(5.0 * 60)  # sixty half-lives of healthy silence
        assert health.penalty() == pytest.approx(1.0, abs=1e-12)
        # and the health machinery keeps working after the gap
        health.record_success()
        assert health.penalty() == pytest.approx(1.0, abs=1e-12)
        assert health.successes == 1 and health.failures == 3

    def test_invalid_halflife_rejected(self):
        from repro.faults import DeviceHealth

        with pytest.raises(ValueError):
            DeviceHealth("gpu0", decay_halflife_s=0.0)

    def test_clock_rejects_negative_advance(self):
        from repro.faults import SimulatedClock

        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)
