"""Unit + property tests for the timing simulators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import (
    NVLINK2,
    PCIE3_X16,
    POWER8,
    POWER9,
    TESLA_K80,
    TESLA_V100,
)
from repro.sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers

from .kernels import build_colwise, build_gemm, build_rowwise, build_vecadd


class TestCPUSim:
    def test_more_threads_is_faster_on_big_work(self):
        env = {"ni": 2048, "nj": 2048, "nk": 2048}
        t4 = simulate_cpu(build_gemm(), POWER9, env, num_threads=4)
        t160 = simulate_cpu(build_gemm(), POWER9, env)
        assert t160.seconds < t4.seconds

    def test_more_threads_hurts_tiny_work(self):
        # fork/barrier at 160 threads dominates a tiny kernel
        env = {"n": 2048}
        t4 = simulate_cpu(build_vecadd(), POWER9, env, num_threads=4)
        t160 = simulate_cpu(build_vecadd(), POWER9, env)
        assert t160.seconds > t4.seconds

    def test_work_scales_superlinearly_for_gemm(self):
        small = simulate_cpu(build_gemm(), POWER9, {"ni": 512, "nj": 512, "nk": 512})
        big = simulate_cpu(build_gemm(), POWER9, {"ni": 1024, "nj": 1024, "nk": 1024})
        assert big.seconds > 4 * small.seconds

    def test_vectorizing_host_beats_scalar_host(self):
        # the Section III story: POWER9's wider vector units
        env = {"n": 4096}
        p8 = simulate_cpu(build_colwise(), POWER8, env)
        p9 = simulate_cpu(build_colwise(), POWER9, env)
        assert p9.seconds < p8.seconds

    def test_result_fields_consistent(self):
        res = simulate_cpu(build_rowwise(), POWER9, {"n": 4096})
        assert res.seconds >= res.overhead_seconds
        assert res.bound in ("compute", "bandwidth", "l2", "l3")
        assert res.dram_bytes >= 0
        assert res.cycles_per_iteration > 0

    def test_vectorize_flag_off_slower(self):
        env = {"n": 8192}
        vec = simulate_cpu(build_rowwise(), POWER9, env)
        scalar = simulate_cpu(build_rowwise(), POWER9, env, vectorize=False)
        assert scalar.seconds >= vec.seconds

    @given(n=st.sampled_from([256, 512, 1024, 2048, 4096, 8192]))
    @settings(max_examples=6, deadline=None)
    def test_monotone_in_problem_size(self, n):
        a = simulate_cpu(build_rowwise(), POWER9, {"n": n})
        b = simulate_cpu(build_rowwise(), POWER9, {"n": 2 * n})
        assert b.seconds > a.seconds


class TestGPUSim:
    def test_result_fields_consistent(self):
        res = simulate_gpu_kernel(build_gemm(), TESLA_V100, {"ni": 1024, "nj": 1024, "nk": 1024})
        assert res.seconds >= res.launch_seconds
        assert res.bound in ("issue", "memory", "bandwidth", "l2")
        assert res.dram_bytes >= 0
        assert res.plan.parallel_iterations == 1024

    def test_v100_beats_k80(self):
        env = {"ni": 2048, "nj": 2048, "nk": 2048}
        k80 = simulate_gpu_kernel(build_gemm(), TESLA_K80, env)
        v100 = simulate_gpu_kernel(build_gemm(), TESLA_V100, env)
        assert v100.seconds < k80.seconds

    def test_uncoalesced_kernel_pays(self):
        # the paper's A[max*a] strided store vs a unit-stride store of the
        # same element count: scattered sectors cost far more
        from .kernels import build_strided_store

        n = 1 << 20
        bad = simulate_gpu_kernel(build_strided_store(), TESLA_V100, {"max": n})
        r = build_vecadd()
        good = simulate_gpu_kernel(r, TESLA_V100, {"n": n})
        assert bad.seconds > 2 * good.seconds
        assert bad.dram_bytes > good.dram_bytes

    def test_launch_overhead_floors_tiny_kernels(self):
        res = simulate_gpu_kernel(build_vecadd(), TESLA_V100, {"n": 32})
        assert res.seconds >= TESLA_V100.launch_overhead_us * 1e-6

    @given(n=st.sampled_from([1 << 16, 1 << 18, 1 << 20]))
    @settings(max_examples=3, deadline=None)
    def test_monotone_in_problem_size(self, n):
        a = simulate_gpu_kernel(build_vecadd(), TESLA_V100, {"n": n})
        b = simulate_gpu_kernel(build_vecadd(), TESLA_V100, {"n": 4 * n})
        assert b.seconds > a.seconds

    def test_streaming_kernel_bandwidth_bound(self):
        res = simulate_gpu_kernel(build_vecadd(), TESLA_V100, {"n": 1 << 24})
        # 3 streams of 64 MiB: the DRAM roofline should be the binding term
        assert res.bound in ("bandwidth", "memory")
        assert res.dram_bytes > 3 * (1 << 24) * 4 * 0.5


class TestTransferSim:
    def test_bytes_match_region_maps(self):
        env = {"ni": 64, "nj": 64, "nk": 64}
        res = simulate_transfers(build_gemm(), NVLINK2, env)
        assert res.bytes_to_device == 3 * 64 * 64 * 4
        assert res.bytes_to_host == 64 * 64 * 4
        assert res.num_transfers == 4  # A, B, C down; C up

    def test_duplex_overlap(self):
        env = {"ni": 512, "nj": 512, "nk": 512}
        res = simulate_transfers(build_gemm(), NVLINK2, env)
        assert res.total_seconds == max(
            res.seconds_to_device, res.seconds_to_host
        )

    def test_pcie_slower(self):
        env = {"n": 1 << 22}
        nv = simulate_transfers(build_vecadd(), NVLINK2, env)
        pc = simulate_transfers(build_vecadd(), PCIE3_X16, env)
        assert pc.total_seconds > 4 * nv.total_seconds

    def test_per_array_latency(self):
        # four DMAs -> at least four setup latencies in the direction sums
        env = {"ni": 8, "nj": 8, "nk": 8}
        res = simulate_transfers(build_gemm(), NVLINK2, env)
        assert res.seconds_to_device >= 3 * NVLINK2.latency_us * 1e-6
