"""Shared hand-built kernels for tests (small, self-contained regions).

The ``build_*_race``/``build_undeclared_reduction`` kernels at the bottom
are *deliberately broken* lint fixtures: they exercise the race and
reduction detectors and must never be fed to the correctness executors.
"""

from repro.ir import Region


def build_gemm() -> Region:
    """C = alpha*A*B + beta*C with parallel i loop."""
    r = Region("gemm")
    ni, nj, nk = r.param_tuple("ni", "nj", "nk")
    A = r.array("A", (ni, nk))
    B = r.array("B", (nk, nj))
    C = r.array("C", (ni, nj), inout=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", ni) as i:
        with r.loop("j", nj) as j:
            acc = r.local("acc", C[i, j] * beta)
            with r.loop("k", nk) as k:
                r.assign(acc, acc + alpha * A[i, k] * B[k, j])
            r.store(C[i, j], acc)
    return r


def build_vecadd() -> Region:
    """z = x + y, the simplest coalesced parallel loop."""
    r = Region("vecadd")
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,))
    z = r.array("z", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(z[i], x[i] + y[i])
    return r


def build_strided_store(factor_param: str = "max") -> Region:
    """The paper's Section IV.C example: A[max * a] = 1.0."""
    r = Region("strided")
    mx = r.param(factor_param)
    A = r.array("A", (mx * mx,), output=True)
    with r.parallel_loop("a", mx) as a:
        r.store(A[mx.sym * a], 1.0)
    return r


def build_colwise() -> Region:
    """y[j] = sum_i A[i][j] — parallel over columns, stride-1 across threads."""
    r = Region("colsum")
    n = r.param("n")
    A = r.array("A", (n, n))
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("j", n) as j:
        acc = r.local("acc", 0.0)
        with r.loop("i", n) as i:
            r.assign(acc, acc + A[i, j])
        r.store(y[j], acc)
    return r


def build_rowwise() -> Region:
    """y[i] = sum_j A[i][j] — parallel over rows, stride-n across threads."""
    r = Region("rowsum")
    n = r.param("n")
    A = r.array("A", (n, n))
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        acc = r.local("acc", 0.0)
        with r.loop("j", n) as j:
            r.assign(acc, acc + A[i, j])
        r.store(y[i], acc)
    return r


def build_write_write_race() -> Region:
    """LINT FIXTURE (do not execute): thread i writes A[i] *and* A[i+1].

    Adjacent threads collide on every interior element — the canonical
    cross-iteration write-write race (lint code RACE001).  The array has
    extent n+1 so the overlap is the only defect.
    """
    r = Region("ww_race")
    n = r.param("n")
    A = r.array("A", (n + 1,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(A[i.sym], 1.0)
        r.store(A[i.sym + 1], 2.0)
    return r


def build_undermapped_output() -> Region:
    """LINT FIXTURE (do not execute): z = x + y but z is mapped to-only.

    The kernel's whole product never travels back to the host — the
    silent-corruption case the map lint exists for (MAP001, blocks the
    gate).
    """
    r = Region("undermapped")
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,))
    z = r.array("z", (n,))  # written below, but declared input-only
    with r.parallel_loop("i", n) as i:
        r.store(z[i], x[i] + y[i])
    return r


def build_overmapped_input() -> Region:
    """LINT FIXTURE: z = x + y with z defensively mapped tofrom.

    The kernel overwrites every element of ``z`` before any read, so the
    declared host→device copy of ``z`` is pure waste (MAP002).
    """
    r = Region("overmapped")
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,))
    z = r.array("z", (n,), inout=True)  # should be output=True
    with r.parallel_loop("i", n) as i:
        r.store(z[i], x[i] + y[i])
    return r


def build_temp_mapped_both_ways() -> Region:
    """LINT FIXTURE: device scratch W mapped tofrom (MAP003).

    ``W`` is fully produced by the first nest and consumed by the second;
    no host value ever flows in and the final value is never used after
    the region — it should be a device-only (alloc) buffer.
    """
    r = Region("temp_both")
    n = r.param("n")
    x = r.array("x", (n,))
    W = r.array("W", (n,), inout=True)  # scratch: should be alloc-only
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(W[i], x[i] * 2.0)
        r.store(y[i], W[i] + 1.0)
    return r


def build_dead_map() -> Region:
    """LINT FIXTURE: array ``unused`` mapped but never touched (MAP004)."""
    r = Region("dead_map")
    n = r.param("n")
    x = r.array("x", (n,))
    unused = r.array("unused", (n, n), inout=True)  # noqa: F841 - the defect
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(y[i], x[i] + 1.0)
    return r


def build_unanalysable_direction() -> Region:
    """LINT FIXTURE: non-affine read index defeats the dataflow (MAP005).

    ``x[(i*i) % n]`` cannot be decomposed as an affine form over ``i``,
    so the direction of ``x`` is unknown and the declared map cannot be
    verified (or tightened).
    """
    r = Region("unanalysable")
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(y[i], x[(i.sym * i.sym) % n.sym])
    return r


def build_undeclared_reduction() -> Region:
    """LINT FIXTURE (do not execute): s[0] += x[i] with a plain store.

    Every thread read-modify-writes the same accumulator cell without a
    reduction clause (lint code RED001).
    """
    r = Region("plain_reduce")
    n = r.param("n")
    x = r.array("x", (n,))
    s = r.array("s", (1,), inout=True)
    with r.parallel_loop("i", n) as i:
        r.store(s[0], s[0] + x[i])
    return r
