"""Integration tests of the experiment harness (paper-shape assertions).

These are the cheap counterparts of the benchmark targets: each experiment
runs once per session (module-scoped fixtures) and multiple assertions
inspect its structure and the paper-anchored shapes.
"""

import pytest

from repro.experiments import (
    measure_suite,
    predict_suite,
    run_ablations,
    run_figure3,
    run_figure45,
    run_figure6,
    run_figure7,
    run_figure8,
    run_table1,
    run_table2,
    run_table3,
)

P8 = "POWER8+K80"
P9 = "POWER9+V100"


@pytest.fixture(scope="module")
def table1():
    return run_table1()


@pytest.fixture(scope="module")
def figure8_results():
    return {mode: run_figure8(mode) for mode in ("test", "benchmark")}


class TestMeasureSuite:
    def test_covers_all_kernels(self):
        res = measure_suite(P9, "test")
        assert len(res) == 24
        assert all(m.cpu_seconds > 0 and m.gpu_seconds > 0 for m in res)

    def test_cached(self):
        a = measure_suite(P9, "test")
        b = measure_suite(P9, "test")
        assert a is b

    def test_predict_alignment(self):
        m = measure_suite(P9, "test")
        p = predict_suite(P9, "test")
        assert len(m) == len(p)
        for mm, pp in zip(m, p):
            assert mm.case.name == pp.cpu.region_name


class TestTable1Shapes:
    def test_3dconv_generational_flip(self, table1):
        row = {r.kernel: r for r in table1.rows}["3dconv"]
        assert row.get("benchmark", P8) < 1.0  # slowdown on K80 (paper 0.48x)
        assert row.get("benchmark", P9) > 1.0  # speedup on V100 (paper 4.41x)

    def test_corr_covar_host_clawback(self, table1):
        row = {r.kernel: r for r in table1.rows}["corr_corr"]
        # far better offloading candidate on the POWER8 platform
        assert row.get("benchmark", P8) > 3 * row.get("benchmark", P9)
        # and at test size the POWER9 host outright wins
        assert row.get("test", P9) < 1.0 < row.get("test", P8)

    def test_magnitude_shifts_without_flip(self, table1):
        row = {r.kernel: r for r in table1.rows}["atax_k2"]
        a, b = row.get("test", P8), row.get("test", P9)
        assert a > 1.0 and b > 1.0  # decision unchanged...
        assert b > 2 * a  # ...magnitude drastically different (paper 1.24->40)

    def test_render(self, table1):
        text = table1.render()
        assert "Table I" in text and "geomean" in text


class TestTables23:
    def test_table2_values(self):
        res = run_table2()
        params = dict(res.parameters())
        assert params["TLB Entries"] == 1024
        assert params["TLB Miss Penalty"] == "14 Cycles"
        assert "Table II" in res.render()

    def test_table3_values(self):
        res = run_table3()
        assert res.measured_l1 == 28.0
        assert res.measured_l2 == 193.0
        assert "Table III" in res.render()


class TestFigures:
    def test_figure3_components(self):
        res = run_figure3()
        assert len(res.rows) == 24
        assert "Figure 3" in res.render()

    def test_figure45_regimes(self):
        res = run_figure45()
        assert {"memory-bound", "compute-bound"} <= res.cases_seen()
        assert "MWP" in res.render()

    def test_figure6_quality(self):
        res = run_figure6()
        assert res.decision_accuracy >= 0.8
        assert res.rank_correlation_proxy > 0.8
        assert "Figure 6" in res.render()

    def test_figure7_quality(self):
        res = run_figure7()
        assert res.decision_accuracy >= 0.8
        assert res.rank_correlation_proxy > 0.8

    def test_figure8_headline(self, figure8_results):
        for mode, res in figure8_results.items():
            gms = res.geomeans()
            # the paper's headline: model-guided >= always-offload
            assert gms["model-guided"] >= gms["always-gpu"] * 0.999
            assert gms["model-guided"] <= gms["oracle"] + 1e-9

    def test_figure8_keeps_close_call_misses(self, figure8_results):
        # mispredictions on close calls survive, as the paper reports
        total_misses = sum(len(r.misses()) for r in figure8_results.values())
        assert total_misses >= 1
        for res in figure8_results.values():
            for miss in res.misses():
                # misses should be close calls or known coalescing blind
                # spots, never order-of-magnitude blunders on clear wins
                assert miss.true_speedup < 4.0

    def test_figure8_render(self, figure8_results):
        text = figure8_results["benchmark"].render()
        assert "Figure 8" in text and "mispredictions" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def abl(self):
        return run_ablations("test")

    def test_all_variants_present(self, abl):
        names = {s.variant for s in abl.scores}
        assert "full" in names and "no-calibration" in names
        assert len(names) == 6

    def test_full_model_is_best_or_tied(self, abl):
        full = abl.score("full").geomean_speedup
        assert full >= abl.score("no-calibration").geomean_speedup - 1e-9

    def test_render(self, abl):
        assert "Ablations" in abl.render()


class TestSummaryAndCrossgen:
    def test_summary_scorecard_holds(self):
        from repro.experiments import run_summary

        result = run_summary()
        assert len(result.claims) >= 9
        assert result.all_hold
        assert "scorecard" in result.render()

    def test_crossgen_monotone_geomeans(self):
        from repro.experiments import run_crossgen

        result = run_crossgen("benchmark")
        gms = result.geomeans()
        assert gms[0] < gms[1] < gms[2]
        assert result.monotone_kernels() >= 20
        assert "Cross-generation" in result.render()
