"""Unit tests for the Liao & Chapman CPU model (Figure 3 / Table II)."""

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.machines import POWER8, POWER9
from repro.models import predict_both, predict_cpu_time
from repro.machines import PLATFORM_P9_V100

from .kernels import build_gemm, build_rowwise, build_vecadd


def _predict(region, env, cpu=POWER9, num_threads=None):
    db = ProgramAttributeDatabase()
    bound = db.compile_region(region).bind(env)
    return predict_cpu_time(
        region,
        bound.loadout,
        bound.parallel_iterations,
        cpu,
        num_threads=num_threads,
        env=dict(env),
    )


class TestLiaoModel:
    def test_breakdown_sums_to_total(self):
        pred = _predict(build_gemm(), {"ni": 256, "nj": 256, "nk": 256})
        assert sum(pred.breakdown().values()) == pytest.approx(pred.total_cycles)
        assert pred.seconds == pytest.approx(
            POWER9.cycles_to_seconds(pred.total_cycles)
        )

    def test_table2_constants_appear(self):
        pred = _predict(build_vecadd(), {"n": 1024}, num_threads=8)
        comps = pred.breakdown()
        assert comps["Schedule_c"] == 10154
        assert comps["Fork_c"] == 3000  # team scale 1.0 at 8 threads
        assert comps["Join_c"] == 4000

    def test_team_scaling_inflates_fork_join(self):
        small = _predict(build_vecadd(), {"n": 100_000}, num_threads=8)
        wide = _predict(build_vecadd(), {"n": 100_000}, num_threads=160)
        assert wide.fork_cycles > 50 * small.fork_cycles
        assert wide.join_cycles > 50 * small.join_cycles

    def test_more_threads_shrink_chunk(self):
        env = {"ni": 1024, "nj": 1024, "nk": 1024}
        four = _predict(build_gemm(), env, num_threads=4)
        wide = _predict(build_gemm(), env, num_threads=160)
        assert wide.chunk_cycles < four.chunk_cycles

    def test_machine_cycles_positive(self):
        pred = _predict(build_rowwise(), {"n": 2048})
        assert pred.machine_cycles_per_iter > 0

    def test_power8_slower_than_power9_on_vector_kernels(self):
        env = {"n": 4096}
        p8 = _predict(build_rowwise(), env, cpu=POWER8)
        p9 = _predict(build_rowwise(), env, cpu=POWER9)
        assert p9.seconds < p8.seconds

    def test_loop_overhead_proportional_to_chunk(self):
        env = {"n": 160_000}
        pred = _predict(build_vecadd(), env, num_threads=160)
        assert pred.loop_overhead_cycles == pytest.approx(
            POWER9.loop_overhead_per_iter * 1000
        )

    def test_tlb_cost_kicks_in_for_huge_chunks(self):
        # one thread walks the whole matrix: pages >> TLB entries
        env = {"ni": 4096, "nj": 4096, "nk": 4096}
        pred = _predict(build_gemm(), env, num_threads=1)
        assert pred.cache_cycles > 0

    def test_static_mode_without_env(self):
        """Compile-time only prediction: the 128-iteration abstraction."""
        region = build_gemm()
        db = ProgramAttributeDatabase()
        attrs = db.compile_region(region)
        pred = predict_cpu_time(
            region, attrs.static_loadout, 1100, POWER9, env=None
        )
        assert pred.seconds > 0


class TestSelector:
    def test_selection_consistency(self):
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(
            {"ni": 1024, "nj": 1024, "nk": 1024}
        )
        sel = predict_both(bound, PLATFORM_P9_V100)
        assert sel.offload == (sel.gpu.seconds < sel.cpu.seconds)
        assert sel.winner in ("cpu", "gpu")
        assert sel.predicted_speedup == pytest.approx(
            sel.cpu.seconds / sel.gpu.seconds
        )

    def test_calibration_scales_outputs(self):
        from repro.calibrate import ModelCalibration

        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(
            {"ni": 512, "nj": 512, "nk": 512}
        )
        raw = predict_both(bound, PLATFORM_P9_V100)
        cal = ModelCalibration("x", None, cpu_time_scale=2.0, gpu_time_scale=1.0)
        scaled = predict_both(bound, PLATFORM_P9_V100, calibration=cal)
        assert scaled.cpu.seconds == pytest.approx(2 * raw.cpu.seconds)
        # gpu scale 1.0: transfer/launch unchanged
        assert scaled.gpu.seconds == pytest.approx(raw.gpu.seconds)

    def test_gpu_calibration_spares_transfer(self):
        from repro.calibrate import ModelCalibration

        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_vecadd()).bind({"n": 1 << 22})
        raw = predict_both(bound, PLATFORM_P9_V100)
        cal = ModelCalibration("x", None, cpu_time_scale=1.0, gpu_time_scale=0.5)
        scaled = predict_both(bound, PLATFORM_P9_V100, calibration=cal)
        assert scaled.gpu.kernel_seconds == pytest.approx(
            0.5 * raw.gpu.kernel_seconds
        )
        assert scaled.gpu.transfer.total_seconds == pytest.approx(
            raw.gpu.transfer.total_seconds
        )

    def test_static_tripcount_mode_differs(self):
        db = ProgramAttributeDatabase()
        bound = db.compile_region(build_gemm()).bind(
            {"ni": 9600, "nj": 9600, "nk": 9600}
        )
        dynamic = predict_both(bound, PLATFORM_P9_V100)
        static = predict_both(
            bound, PLATFORM_P9_V100, use_runtime_tripcounts=False
        )
        # 9600-iteration inner loops vs the 128 abstraction: a big gap
        assert dynamic.cpu.seconds > 10 * static.cpu.seconds
