"""Analysis-level characteristics of the Polybench kernels.

Verifies that the static analyses see the suite the way the paper
describes it: coalescing verdicts, vectorization opportunities, loadout
shapes — the inputs that drive all the reproduced tables.
"""

import pytest

from repro.analysis import ProgramAttributeDatabase, nest_trips, extract_loadout
from repro.ipda import CoalescingClass, analyze_region
from repro.machines import POWER8, POWER9
from repro.mca import find_band_level, lower_region
from repro.polybench import all_kernel_cases, benchmark_by_name


def _region(bench, k=0):
    return benchmark_by_name(bench).build()[k]


def _bound_ipda(bench, k=0, mode="test"):
    spec = benchmark_by_name(bench)
    return analyze_region(spec.build()[k]).bind(spec.env(mode))


class TestCoalescingVerdicts:
    def test_gemm_collapse2_mostly_coalesced(self):
        bound = _bound_ipda("gemm")
        verdicts = {
            b.stride.access.array.name: b.coalescing for b in bound.accesses
        }
        # B[k][j] and C[i][j] coalesce along j; A[i][k] is uniform across j
        assert verdicts["B"] is CoalescingClass.COALESCED
        assert verdicts["C"] is CoalescingClass.COALESCED
        assert verdicts["A"] is CoalescingClass.UNIFORM

    def test_syrk_has_the_uncoalesced_walk(self):
        bound = _bound_ipda("syrk")
        classes = [b.coalescing for b in bound.accesses]
        # A[j][k] walks a row per thread j: the paper's SYRK trouble spot
        assert CoalescingClass.UNCOALESCED in classes

    def test_atax_k2_coalesced(self):
        bound = _bound_ipda("atax", k=1)
        assert all(b.is_coalesced for b in bound.accesses)

    def test_3dconv_uncoalesced_loads(self):
        bound = _bound_ipda("3dconv")
        loads = [b for b in bound.accesses if not b.stride.is_store]
        # every access strides nk along the band var j: warp-instantaneous
        # uncoalesced (the per-thread k-walk coalesces only via caches,
        # which is exactly what the Hong model cannot see — Section IV.E)
        assert all(
            b.coalescing is CoalescingClass.UNCOALESCED for b in loads
        )
        stores = [b for b in bound.accesses if b.stride.is_store]
        assert all(
            s.coalescing is CoalescingClass.UNCOALESCED for s in stores
        )

    def test_mvt_transposed_kernel_uniformity(self):
        bound = _bound_ipda("mvt", k=1)
        verdicts = {
            (b.stride.access.array.name, b.stride.is_store): b.coalescing
            for b in bound.accesses
        }
        # A[j][i]: inter-thread stride 1 -> coalesced on the GPU
        assert verdicts[("A", False)] is CoalescingClass.COALESCED

    @pytest.mark.parametrize(
        "case", all_kernel_cases("test"), ids=lambda c: c.name
    )
    def test_every_kernel_binds_cleanly(self, case):
        bound = analyze_region(case.region).bind(case.env)
        assert len(bound.accesses) >= 1
        coal, uncoal = bound.counts()
        assert coal + uncoal == len(bound.accesses)


class TestVectorization:
    def test_power9_band_vectorizes_gemm(self):
        band = find_band_level(lower_region(_region("gemm"), POWER9))
        assert band.is_band_vectorized()

    def test_power8_cannot_band_vectorize_gemm(self):
        band = find_band_level(lower_region(_region("gemm"), POWER8))
        assert not band.info.vectorized

    def test_power8_still_inner_vectorizes_atax_k1(self):
        # row dot product: stride-1 innermost loop, VSX-2 handles it
        root = lower_region(_region("atax", 0), POWER8)
        band = find_band_level(root)
        assert band.sub_loops[0].info.vectorized

    def test_corr_main_kernel_middle_loop_vectorizes_on_p9(self):
        root = lower_region(_region("corr", 3), POWER9)
        band = find_band_level(root)
        j2 = band.sub_loops[0]
        assert j2.info.vectorized  # the paper's VSX-3 story
        root8 = lower_region(_region("corr", 3), POWER8)
        j2_p8 = find_band_level(root8).sub_loops[0]
        assert not j2_p8.info.vectorized


class TestLoadouts:
    def test_gemm_arithmetic_intensity_beats_mvt(self):
        env_g = benchmark_by_name("gemm").env("test")
        env_m = benchmark_by_name("mvt").env("test")
        gemm_lo = extract_loadout(
            _region("gemm"), nest_trips(_region("gemm"), env_g)
        )
        # note: loadouts must be computed on the same region instance that
        # nest_trips walked
        gemm_region = _region("gemm")
        gemm_lo = extract_loadout(gemm_region, nest_trips(gemm_region, env_g))
        mvt_region = _region("mvt")
        mvt_lo = extract_loadout(mvt_region, nest_trips(mvt_region, env_m))
        assert gemm_lo.arithmetic_intensity() > 0
        assert mvt_lo.arithmetic_intensity() > 0
        # per-byte compute: GEMM (O(n) reuse) >= MVT (streaming)
        assert gemm_lo.arithmetic_intensity() >= mvt_lo.arithmetic_intensity()

    def test_conv_low_intensity(self):
        region = _region("2dconv")
        env = benchmark_by_name("2dconv").env("test")
        lo = extract_loadout(region, nest_trips(region, env))
        # "low arithmetic intensity and heavily memory-bound" (Section III)
        assert lo.arithmetic_intensity() < 0.5

    def test_corr_std_counts_sfu(self):
        region = _region("corr", 1)
        env = benchmark_by_name("corr").env("test")
        lo = extract_loadout(region, nest_trips(region, env))
        assert lo.sfu_insts >= 1  # the sqrt


class TestAttributeDatabaseOverSuite:
    def test_all_kernels_compile_and_bind(self):
        db = ProgramAttributeDatabase()
        for case in all_kernel_cases("test"):
            attrs = db.compile_region(case.region)
            bound = attrs.bind(case.env)
            assert bound.parallel_iterations > 0
            assert bound.bytes_to_device > 0
        assert len(db) == 24
