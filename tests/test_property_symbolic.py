"""Seeded property-based tests for the symbolic expression engine.

Three families of properties over randomly generated expression trees:

* canonicalization is a fixpoint — rebuilding a canonical expression
  through the ``make`` constructors (via ``subs({})``) changes nothing,
  and full substitution folds to the same constant ``evaluate`` computes;
* the printer and the index-expression parser are inverses — every
  ``repr`` round-trips structurally through :mod:`repro.ir.parser`;
* the sign lattice is sound and its joins are monotone — ``sign_of``
  never claims a sign class the concrete value escapes, and refining an
  operand of ``_add_signs``/``_mul_signs`` never weakens the result.

``derandomize=True`` keeps the sweeps seeded: every run explores the
same example set, so failures reproduce deterministically.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.parser import _Parser
from repro.symbolic import Add, Const, FloorDiv, Max, Min, Mod, Mul, Sym
from repro.symbolic.signs import Sign, _add_signs, _mul_signs, sign_of

SYM_NAMES = ("n", "m", "k")

_atoms = st.one_of(
    st.integers(min_value=-6, max_value=6).map(Const),
    st.sampled_from(SYM_NAMES).map(Sym),
)

# Divisors restricted to provably nonzero forms (positive constants or
# symbols, which the repo's convention binds to positive integers) so
# every generated expression is total under the sampled environments.
_divisors = st.one_of(
    st.integers(min_value=2, max_value=7).map(Const),
    st.sampled_from(SYM_NAMES).map(Sym),
)


def _extend(children):
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(Add.make),
        st.lists(children, min_size=2, max_size=3).map(Mul.make),
        st.tuples(children, _divisors).map(lambda p: FloorDiv.make(*p)),
        st.tuples(children, _divisors).map(lambda p: Mod.make(*p)),
        st.tuples(children, children).map(lambda p: Min.make(*p)),
        st.tuples(children, children).map(lambda p: Max.make(*p)),
    )


exprs = st.recursive(_atoms, _extend, max_leaves=10)

envs = st.fixed_dictionaries(
    {name: st.integers(min_value=1, max_value=40) for name in SYM_NAMES}
)


class TestCanonicalForm:
    @settings(max_examples=150, derandomize=True)
    @given(e=exprs)
    def test_simplification_is_idempotent(self, e):
        # subs({}) rebuilds the whole tree through the make constructors;
        # a canonical form must be their fixpoint.
        rebuilt = e.subs({})
        assert rebuilt == e
        assert hash(rebuilt) == hash(e)

    @settings(max_examples=150, derandomize=True)
    @given(e=exprs, env=envs)
    def test_full_substitution_folds_to_evaluate(self, e, env):
        folded = e.subs(env)
        assert isinstance(folded, Const)
        assert folded.value == e.evaluate(env)

    @settings(max_examples=100, derandomize=True)
    @given(e=exprs, env=envs)
    def test_evaluate_agrees_after_partial_substitution(self, e, env):
        partial = {name: env[name] for name in list(env)[:1]}
        assert e.subs(partial).evaluate(env) == e.evaluate(env)


class TestPrinterParserRoundTrip:
    @settings(max_examples=150, derandomize=True)
    @given(e=exprs)
    def test_repr_round_trips_structurally(self, e):
        parsed = _Parser(repr(e))._parse_index()
        assert parsed == e

    @settings(max_examples=100, derandomize=True)
    @given(e=exprs, env=envs)
    def test_repr_round_trips_semantically(self, e, env):
        parsed = _Parser(repr(e))._parse_index()
        assert parsed.evaluate(env) == e.evaluate(env)


def _member(value, sign: Sign) -> bool:
    """Is the concrete value inside the sign class's denotation?"""
    return {
        Sign.NEGATIVE: value < 0,
        Sign.NONPOSITIVE: value <= 0,
        Sign.ZERO: value == 0,
        Sign.NONNEGATIVE: value >= 0,
        Sign.POSITIVE: value > 0,
        Sign.UNKNOWN: True,
    }[sign]


#: Concrete representatives of each sign class (for table soundness).
_REPS = {
    Sign.NEGATIVE: (-3, -1),
    Sign.NONPOSITIVE: (-2, 0),
    Sign.ZERO: (0,),
    Sign.NONNEGATIVE: (0, 2),
    Sign.POSITIVE: (1, 4),
    Sign.UNKNOWN: (-2, 0, 3),
}

_PROBES = (-2, -1, 0, 1, 2)


def _refines(a: Sign, b: Sign) -> bool:
    """a ⊑ b: every value a admits, b admits too (checked on probes)."""
    return all(_member(v, b) for v in _PROBES if _member(v, a))


class TestSignLattice:
    @settings(max_examples=200, derandomize=True)
    @given(e=exprs, env=envs)
    def test_sign_of_is_sound(self, e, env):
        assert _member(e.evaluate(env), sign_of(e))

    @pytest.mark.parametrize("join", [_add_signs, _mul_signs])
    def test_join_tables_are_commutative(self, join):
        for a in Sign:
            for b in Sign:
                assert join(a, b) is join(b, a)

    @pytest.mark.parametrize(
        "join,op",
        [(_add_signs, lambda x, y: x + y), (_mul_signs, lambda x, y: x * y)],
    )
    def test_join_tables_are_sound(self, join, op):
        for a in Sign:
            for b in Sign:
                out = join(a, b)
                for x in _REPS[a]:
                    for y in _REPS[b]:
                        assert _member(op(x, y), out), (a, b, x, y, out)

    @pytest.mark.parametrize("join", [_add_signs, _mul_signs])
    def test_joins_are_monotone(self, join):
        # Refining an input never weakens the output: a ⊑ a' and b ⊑ b'
        # imply join(a, b) ⊑ join(a', b').
        for a in Sign:
            for b in Sign:
                for a2 in Sign:
                    if not _refines(a, a2):
                        continue
                    for b2 in Sign:
                        if not _refines(b, b2):
                            continue
                        assert _refines(join(a, b), join(a2, b2)), (
                            a,
                            b,
                            a2,
                            b2,
                        )

    def test_zero_is_the_additive_identity(self):
        for s in Sign:
            assert _add_signs(Sign.ZERO, s) is s

    def test_zero_annihilates_products(self):
        for s in Sign:
            assert _mul_signs(Sign.ZERO, s) is Sign.ZERO
