"""Unit tests for the functional numpy executor."""

import numpy as np
import pytest

from repro.ir import Region, cmp, select, sqrt
from repro.sim import allocate_arrays, execute_region

from .kernels import build_gemm, build_vecadd


class TestExecuteRegion:
    def test_vecadd(self):
        r = build_vecadd()
        arrays = allocate_arrays(r, {"n": 16}, seed=1)
        execute_region(r, arrays, {}, {"n": 16})
        np.testing.assert_allclose(
            arrays["z"], arrays["x"] + arrays["y"], rtol=1e-6
        )

    def test_gemm_matches_numpy(self):
        r = build_gemm()
        env = {"ni": 5, "nj": 7, "nk": 3}
        arrays = allocate_arrays(r, env, seed=2)
        before = arrays["C"].copy()
        execute_region(r, arrays, {"alpha": 2.0, "beta": 0.5}, env)
        expected = 2.0 * arrays["A"] @ arrays["B"] + 0.5 * before
        np.testing.assert_allclose(arrays["C"], expected, rtol=1e-4)

    def test_missing_scalar_raises(self):
        r = build_gemm()
        arrays = allocate_arrays(r, {"ni": 2, "nj": 2, "nk": 2})
        with pytest.raises(KeyError):
            execute_region(r, arrays, {"alpha": 1.0}, {"ni": 2, "nj": 2, "nk": 2})

    def test_missing_array_raises(self):
        r = build_vecadd()
        with pytest.raises(KeyError):
            execute_region(r, {}, {}, {"n": 4})

    def test_loop_with_offset_start(self):
        r = Region("interior")
        n = r.param("n")
        A = r.array("A", (n,))
        B = r.array("B", (n,), output=True)
        with r.parallel_loop("i", n - 2, start=1) as i:
            r.store(B[i], A[i - 1] + A[i + 1])
        arrays = allocate_arrays(r, {"n": 8}, seed=3)
        execute_region(r, arrays, {}, {"n": 8})
        a = arrays["A"]
        np.testing.assert_allclose(arrays["B"][1:-1], a[:-2] + a[2:], rtol=1e-6)
        assert arrays["B"][0] == 0.0 and arrays["B"][-1] == 0.0

    def test_if_statement(self):
        r = Region("clamp")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.5)):
                r.store(A[i], 0.5)
        arrays = {"A": np.array([0.2, 0.9, 0.5, 0.7], dtype=np.float32)}
        execute_region(r, arrays, {}, {"n": 4})
        np.testing.assert_allclose(arrays["A"], [0.2, 0.5, 0.5, 0.5])

    def test_select_and_sqrt(self):
        r = Region("guard")
        n = r.param("n")
        A = r.array("A", (n,))
        B = r.array("B", (n,), output=True)
        eps = r.scalar("eps")
        with r.parallel_loop("i", n) as i:
            r.store(B[i], select(cmp("le", A[i], eps), 1.0, sqrt(A[i])))
        arrays = {
            "A": np.array([0.04, 0.25, 0.0], dtype=np.float32),
            "B": np.zeros(3, dtype=np.float32),
        }
        execute_region(r, arrays, {"eps": 0.1}, {"n": 3})
        np.testing.assert_allclose(arrays["B"], [1.0, 0.5, 1.0], rtol=1e-6)

    def test_local_accumulator_sequencing(self):
        # two interleaved accumulators must not clobber each other
        r = Region("two_accs")
        n = r.param("n")
        A = r.array("A", (n,))
        out = r.array("out", (2,), output=True)
        with r.parallel_loop("k", 1) as k:
            s = r.local("s", 0.0)
            p = r.local("p", 1.0)
            with r.loop("i", n) as i:
                r.assign(s, s + A[i])
                r.assign(p, p * A[i])
            r.store(out[k + 0], s)
            r.store(out[k + 1], p)
        arrays = {
            "A": np.array([2.0, 3.0, 4.0], dtype=np.float32),
            "out": np.zeros(2, dtype=np.float32),
        }
        execute_region(r, arrays, {}, {"n": 3})
        np.testing.assert_allclose(arrays["out"], [9.0, 24.0])


class TestAllocateArrays:
    def test_inputs_random_outputs_zero(self):
        r = build_vecadd()
        arrays = allocate_arrays(r, {"n": 32})
        assert arrays["x"].min() > 0  # random inputs in (0.1, 1.0)
        assert not arrays["z"].any()  # outputs zero-filled

    def test_deterministic_by_seed(self):
        r = build_vecadd()
        a = allocate_arrays(r, {"n": 8}, seed=7)
        b = allocate_arrays(r, {"n": 8}, seed=7)
        np.testing.assert_array_equal(a["x"], b["x"])
