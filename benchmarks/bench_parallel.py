"""Scores the parallel sweep engine and the persistent analysis cache.

Times the full suite sweep (both platforms, both dataset modes, measure +
predict) four ways — sequential, ``--jobs 2``, ``--jobs 4``, and
cold-vs-warm persistent cache — and writes the ``BENCH_parallel.json``
summary.  The headline invariant: a warm-cache sweep must be at least
``min_warm_speedup`` (2x) faster than the cold-cache sweep, because the
static analysis (MCA steady state, IPDA, loadouts) that dominates the
sweep is replayed from disk instead of recomputed.

``python benchmarks/bench_parallel.py --tiny`` runs a reduced grid (one
platform, test datasets) without enforcing the warm-cache floor — the
CI smoke target; the full run enforces it and exits 1 on a regression.

The parallel arms are now a **hard gate** on every run, tiny included:
``parallel_speedup.jobs4`` below :data:`MIN_PARALLEL_SPEEDUP` (1.0x)
fails the benchmark — the warm persistent-worker pool must beat the
sequential sweep outright, even on one core, because warm workers reuse
measure-phase analysis that the no-cache sequential arm recomputes.
Each run also carries forward the previous ``BENCH_parallel.json``'s
``parallel_speedup`` figures (as ``previous_parallel_speedup``): on the
full grid, a decline of more than :data:`MAX_SPEEDUP_DECLINE` (10%)
against the carried figure is a failure too; smaller declines — and any
decline on the load-sensitive tiny grid — stay warnings.

The pytest entry points double as the differential harness under the
benchmark runner: the parallel sweep must be bit-identical to the
sequential one.
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.common import clear_caches, measure_suite, predict_suite
from repro.parallel import AnalysisCache

MIN_WARM_SPEEDUP = 2.0
MIN_PARALLEL_SPEEDUP = 1.0  # jobs4 must beat the sequential sweep outright
MAX_SPEEDUP_DECLINE = 0.10  # tolerated drop vs the carried speedup (full grid)

FULL_GRID = [("p8-k80", "test"), ("p8-k80", "benchmark"),
             ("p9-v100", "test"), ("p9-v100", "benchmark")]
TINY_GRID = [("p9-v100", "test")]


def run_sweep(grid, jobs=None, chunk=None):
    """One full sweep over the grid; returns a canonical result listing."""
    rows = []
    for plat, mode in grid:
        for m in measure_suite(plat, mode, jobs=jobs, chunk=chunk):
            rows.append([
                plat, mode, m.case.name,
                m.cpu_seconds, m.gpu_kernel_seconds, m.gpu_transfer_seconds,
            ])
        for p in predict_suite(plat, mode, jobs=jobs, chunk=chunk):
            rows.append([plat, mode, p.cpu.seconds, p.gpu.seconds, p.winner])
    return rows


def timed_sweep(grid, jobs=None, chunk=None, cache_dir=None):
    """(seconds, rows) for a from-scratch sweep, optionally cached.

    ``clear_caches(persistent=False)`` drops the in-process memos but
    leaves the worker pools warm — the steady-state configuration the
    parallel arms are meant to time (the first parallel arm still pays
    its own pool spin-up).
    """
    clear_caches(persistent=False)
    start = time.perf_counter()
    if cache_dir:
        with AnalysisCache(cache_dir).activate():
            rows = run_sweep(grid, jobs=jobs, chunk=chunk)
    else:
        rows = run_sweep(grid, jobs=jobs, chunk=chunk)
    return time.perf_counter() - start, rows


def score(grid):
    """Time every arm; returns (payload, failures)."""
    base_s, base_rows = timed_sweep(grid)
    arms = {"sequential": base_s}
    failures = []
    for jobs in (2, 4):
        par_s, par_rows = timed_sweep(grid, jobs=jobs)
        arms[f"jobs{jobs}"] = par_s
        if par_rows != base_rows:
            failures.append(f"jobs={jobs} sweep not bit-identical")
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_s, cold_rows = timed_sweep(grid, cache_dir=cache_dir)
        warm_s, warm_rows = timed_sweep(grid, cache_dir=cache_dir)
        stats = AnalysisCache(cache_dir).stats()
        stats["cache_dir"] = "<tmp>"
    arms["cold_cache"] = cold_s
    arms["warm_cache"] = warm_s
    if cold_rows != base_rows:
        failures.append("cold-cache sweep not bit-identical")
    if warm_rows != base_rows:
        failures.append("warm-cache sweep not bit-identical")
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "grid": [list(g) for g in grid],
        "seconds": {k: round(v, 4) for k, v in sorted(arms.items())},
        "warm_speedup": round(warm_speedup, 2),
        "parallel_speedup": {
            "jobs2": round(base_s / arms["jobs2"], 2),
            "jobs4": round(base_s / arms["jobs4"], 2),
        },
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "cache_entries": stats["entries"],
        "rows": len(base_rows),
    }
    return payload, failures, warm_speedup


def test_parallel_differential(benchmark):
    """Parallel sweep == sequential sweep, timed under pytest-benchmark."""
    clear_caches(persistent=False)
    base = run_sweep(TINY_GRID)
    clear_caches(persistent=False)
    rows = benchmark.pedantic(
        run_sweep, args=(TINY_GRID,), kwargs={"jobs": 2},
        rounds=1, iterations=1,
    )
    assert rows == base


def test_chunked_parallel_differential(benchmark):
    """Chunked (jobs=2, chunk=3) sweep == sequential, under the runner."""
    clear_caches(persistent=False)
    base = run_sweep(TINY_GRID)
    clear_caches(persistent=False)
    rows = benchmark.pedantic(
        run_sweep, args=(TINY_GRID,), kwargs={"jobs": 2, "chunk": 3},
        rounds=1, iterations=1,
    )
    assert rows == base


def test_warm_cache_differential(benchmark):
    """Warm-cache sweep == uncached sweep, and hits dominate."""
    clear_caches(persistent=False)
    base = run_sweep(TINY_GRID)
    with tempfile.TemporaryDirectory() as cache_dir:
        clear_caches(persistent=False)
        with AnalysisCache(cache_dir).activate():
            run_sweep(TINY_GRID)  # populate
        clear_caches(persistent=False)
        warm = AnalysisCache(cache_dir)
        with warm.activate():
            rows = benchmark.pedantic(
                run_sweep, args=(TINY_GRID,), rounds=1, iterations=1
            )
        assert rows == base
        assert warm.hits > 0 and warm.misses == 0


def previous_speedups(path: Path) -> dict | None:
    """The prior run's ``parallel_speedup`` map, if one is on disk."""
    if not path.exists():
        return None
    try:
        prior = json.loads(path.read_text()).get("parallel_speedup")
    except (json.JSONDecodeError, OSError):
        return None
    return prior if isinstance(prior, dict) else None


def speedup_regressions(
    current: dict, previous: dict | None, tolerance: float = 0.0
) -> list[str]:
    """Per-jobs arms whose speedup declined vs the previous run.

    ``tolerance`` is the tolerated fractional drop: 0.0 flags any
    decline (the warning tripwire), :data:`MAX_SPEEDUP_DECLINE` flags
    only declines past the hard-gate threshold.
    """
    if previous is None:
        return []
    return [
        f"{arm} parallel speedup declined {previous[arm]:.2f}x -> "
        f"{current[arm]:.2f}x vs previous run"
        for arm in sorted(current)
        if isinstance(previous.get(arm), (int, float))
        and current[arm] < previous[arm] * (1.0 - tolerance)
    ]


def main(argv: list[str] | None = None) -> int:
    """Smoke entry point: no pytest-benchmark needed."""
    args = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in args
    grid = TINY_GRID if tiny else FULL_GRID
    payload, failures, warm_speedup = score(grid)
    if not tiny and warm_speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm cache speedup {warm_speedup:.2f}x < {MIN_WARM_SPEEDUP}x"
        )
    jobs4 = payload["parallel_speedup"]["jobs4"]
    if jobs4 < MIN_PARALLEL_SPEEDUP:
        failures.append(
            f"jobs4 parallel speedup {jobs4:.2f}x < "
            f"{MIN_PARALLEL_SPEEDUP:.1f}x: the warm persistent-worker "
            "pool must beat the sequential sweep"
        )
    out = Path("BENCH_parallel.json")
    previous = previous_speedups(out)
    payload["previous_parallel_speedup"] = previous
    declined = speedup_regressions(payload["parallel_speedup"], previous)
    hard = (
        []
        if tiny  # the tiny grid is too load-sensitive to hard-gate declines
        else speedup_regressions(
            payload["parallel_speedup"], previous, MAX_SPEEDUP_DECLINE
        )
    )
    failures.extend(hard)
    for warning in declined:
        if warning not in hard:
            print(f"WARNING: {warning}", file=sys.stderr)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
