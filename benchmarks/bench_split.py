"""Extension bench: cooperative CPU+GPU split execution.

Not a paper artefact — the Introduction's Valero-Lara motivation turned
into a capability: predict the optimal static split of each kernel's
parallel band and quantify the cooperative win over the best single
device.
"""

from repro.analysis import ProgramAttributeDatabase
from repro.calibrate import fit_model_calibration
from repro.machines import PLATFORM_P9_V100
from repro.models import predict_split
from repro.polybench import all_kernel_cases
from repro.util import render_table

_printed = False


def _run():
    global _printed
    cal = fit_model_calibration(PLATFORM_P9_V100)
    db = ProgramAttributeDatabase()
    results = []
    for case in all_kernel_cases("benchmark"):
        bound = db.compile_region(case.region).bind(case.env)
        results.append(predict_split(bound, PLATFORM_P9_V100, calibration=cal))
    if not _printed:
        rows = [
            [
                s.region_name,
                f"{s.gpu_fraction:.0%}",
                f"{s.speedup_over_best_single:.2f}x",
                "yes" if s.worthwhile else "no",
            ]
            for s in results
        ]
        print()
        print(
            render_table(
                ["kernel", "best GPU share", "vs best single device", "worth it"],
                rows,
                title="Cooperative split predictions (POWER9+V100, benchmark)",
            )
        )
        _printed = True
    return results


def test_split_extension(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(results) == 24
    for s in results:
        # splitting can never be predicted worse than the best single device
        assert s.makespan_seconds <= min(
            s.cpu_only_seconds, s.gpu_only_seconds
        ) + 1e-12
        assert 0.0 <= s.gpu_fraction <= 1.0
    # cooperation should pay off for at least a few boundary kernels
    assert sum(s.worthwhile for s in results) >= 3
