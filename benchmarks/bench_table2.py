"""Regenerates Table II (CPU model parameters) via microbenchmark probes."""

from repro.experiments import run_table2
from repro.machines import POWER9

_printed = False


def _run():
    global _printed
    result = run_table2(POWER9)
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_table2_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    # the probes must recover the paper's Table II values
    assert result.measured_tlb_entries == 1024
    assert result.measured_tlb_penalty == 14.0
    params = dict(result.parameters())
    assert params["Par_Schedule_Overhead_static"] == "10154 Cycles"
    assert params["Synchronization_Overhead"] == "4000 Cycles"
    assert params["Par_Startup"] == "3000 Cycles"
    assert params["CPU Frequency"] == "3 GHz"
    # EPCC overhead grows superlinearly with the team
    curve = {m.num_threads: m.overhead_cycles for m in result.epcc_curve}
    assert curve[160] > 20 * curve[8]
