"""Scores declared vs dataflow-inferred transfer sizing (docs/LINT.md).

Checks the contract of the array-liveness analysis end to end:

* the clean Polybench suite keeps byte-identical sizing and identical
  selector decisions under ``inferred_transfers=True``;
* every over-mapped scenario tightens (never widens) both directions;
* at least one scenario flips the selector decision onto the true
  oracle target while recovering real transfer seconds.

``python benchmarks/bench_transfers.py`` prints the report without
pytest — the CI smoke target.
"""

import sys

from repro.experiments import run_transfers

_printed = False


def _run():
    global _printed
    result = run_transfers()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_transfers_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    # clean maps: inference must not move a byte or a decision
    assert all(row.agrees for row in result.suite)

    # scenarios: inference only drops transfers, never invents them
    for row in result.scenarios:
        assert row.tightened
        assert row.wasted_seconds >= 0

    # the defensively-mapped vecadd recovers its wasted copy-in
    defensive = result.scenario("defensive-tofrom")
    assert defensive.inferred_to_device < defensive.declared_to_device
    assert "MAP002" in defensive.map_codes

    # the dead debug buffer flips the selector onto the oracle target
    deadbuf = result.scenario("dead-debug-buffer")
    assert deadbuf.fixed and deadbuf.wasted_seconds > 0
    assert "MAP004" in deadbuf.map_codes

    assert result.passed


if __name__ == "__main__":
    result = _run()
    ok = result.passed
    print(f"\nself-check: {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
