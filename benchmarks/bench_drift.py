"""Scores the drift sentinel across the calibration-skew scenario grid.

Checks the invariants the drift subsystem promises (docs/ROBUSTNESS.md):

* the zero-skew control stays bit-identical to the sentinel-off baseline
  and never reaches DRIFTED;
* every injected skew is detected within the stored detection-latency
  threshold, and the self-healing selector's post-recovery accuracy lands
  within the stored gap of the unskewed baseline;
* the transient skew is re-promoted to CALIBRATED after it ends.

The thresholds live in ``benchmarks/drift_thresholds.json`` so CI fails
on a regression without editing code.  ``python benchmarks/bench_drift.py
--tiny`` runs a reduced grid without pytest — the CI smoke target — and
writes the ``BENCH_drift.json`` summary next to the working directory.
"""

import json
import sys
from pathlib import Path

from repro.experiments import run_drift

THRESHOLDS_PATH = Path(__file__).resolve().parent / "drift_thresholds.json"

_printed = False


def load_thresholds() -> dict:
    return json.loads(THRESHOLDS_PATH.read_text())


def check(result, thresholds: dict) -> list[str]:
    """Every threshold violation in the grid, as human-readable strings."""
    max_latency = thresholds["max_detection_latency_launches"]
    max_gap = thresholds["max_recovery_gap"]
    failures: list[str] = []
    for row in result.rows:
        if row.bit_identical is not None:  # the zero-skew control
            if not row.bit_identical:
                failures.append(f"{row.scenario}: records not bit-identical")
            if row.detection_launch is not None:
                failures.append(f"{row.scenario}: spurious drift detection")
            continue
        if row.detection_latency is None:
            failures.append(f"{row.scenario}: skew never detected")
        elif row.detection_latency > max_latency:
            failures.append(
                f"{row.scenario}: detection latency {row.detection_latency} "
                f"> {max_latency} launches"
            )
        if row.recovery_gap > max_gap:
            failures.append(
                f"{row.scenario}: recovery gap {row.recovery_gap:.3f} "
                f"> {max_gap}"
            )
    transient = result.get("transient")
    if transient.repromote_launch is None:
        failures.append("transient: never re-promoted to CALIBRATED")
    return failures


def _run():
    global _printed
    result = run_drift()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_drift_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert check(result, load_thresholds()) == []
    assert result.passed


def main(argv: list[str] | None = None) -> int:
    """Smoke entry point: reduced grid, no pytest-benchmark needed."""
    args = sys.argv[1:] if argv is None else argv
    launches, start = (72, 18) if "--tiny" in args else (96, 24)
    thresholds = load_thresholds()
    result = run_drift(launches=launches, start=start)
    print(result.render())
    payload = {**result.to_payload(), "thresholds": thresholds}
    out = Path("BENCH_drift.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    failures = check(result, thresholds)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
