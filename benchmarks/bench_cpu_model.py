"""Regenerates the Figure 3 artefact: Liao/Chapman model breakdowns."""

from repro.experiments import run_figure3
from repro.machines import POWER9

_printed = False


def _run():
    global _printed
    result = run_figure3(POWER9, "test")
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_figure3_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(result.rows) == 24
    # at full thread count GEMM is dominated by a work-proportional term
    # (the memory-system Cache_c at 160 threads), never by fork/join
    assert result.dominant_component("gemm") in (
        "Machine_cycles x Chunk",
        "Cache_c (TLB)",
    )
    # tiny kernels are overhead-dominated on a 160-thread team
    assert result.dominant_component("mvt_k1") in ("Join_c", "Fork_c")
    # every component is present and non-negative for every kernel
    for _name, comps in result.rows:
        assert set(comps) == {
            "Fork_c",
            "Schedule_c",
            "Machine_cycles x Chunk",
            "Cache_c (TLB)",
            "Loop_overhead_c",
            "Reduction_c",
            "Join_c",
        }
        assert all(v >= 0 for v in comps.values())
        # the Table II constants appear verbatim
        assert comps["Schedule_c"] == 10154.0
