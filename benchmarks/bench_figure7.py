"""Regenerates Figure 7: actual vs predicted speedup, benchmark mode, 4 threads."""

from repro.experiments import run_figure7

_printed = False


def _run():
    global _printed
    result = run_figure7()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_figure7_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(result.rows) == 24
    assert result.rank_correlation_proxy > 0.8
    assert result.decision_accuracy >= 0.8
    # transfer-heavy matvec kernels sit near the decision boundary
    rows = {r.kernel: r for r in result.rows}
    assert rows["mvt_k1"].true_speedup < 2.0
