"""Ablation benches: what each framework ingredient contributes."""

import pytest

from repro.experiments import run_ablations

_printed = set()


def _run(mode):
    result = run_ablations(mode)
    if mode not in _printed:
        print()
        print(result.render())
        _printed.add(mode)
    return result


@pytest.mark.parametrize("mode", ["test", "benchmark"])
def test_ablations(benchmark, mode):
    result = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    full = result.score("full")
    # the full framework must be a usable selector
    assert full.decision_accuracy >= 0.6
    assert full.geomean_speedup > 1.0
    # dropping the microbenchmark calibration hurts the test-mode selector
    if mode == "test":
        nocal = result.score("no-calibration")
        assert nocal.geomean_speedup <= full.geomean_speedup + 1e-9
    # every variant stays within the oracle bound implicitly (>0) and
    # produces a sane accuracy
    for s in result.scores:
        assert 0.0 <= s.decision_accuracy <= 1.0
        assert s.geomean_speedup > 0.5
