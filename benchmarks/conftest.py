"""Benchmark-suite configuration.

The benchmarks regenerate every paper table/figure; each prints its
artefact once (so ``pytest benchmarks/ --benchmark-only -s`` shows the
reproduced tables) and times the regeneration itself.
"""

import sys
from pathlib import Path

# allow running from a source checkout without installation
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(SRC))
