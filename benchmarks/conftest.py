"""Benchmark-suite configuration.

The benchmarks regenerate every paper table/figure; each prints its
artefact once (so ``pytest benchmarks/ --benchmark-only -s`` shows the
reproduced tables) and times the regeneration itself.
"""

import os
import sys
from pathlib import Path

# allow running from a source checkout without installation
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(SRC))


def pytest_configure(config):
    """Activate the persistent analysis cache when the runner asks for it.

    ``REPRO_CACHE_DIR=…`` makes every benchmark in the session share one
    :class:`repro.parallel.AnalysisCache`, so warm re-runs skip the
    static analysis entirely (cold vs warm is what
    ``benchmarks/bench_parallel.py`` scores).  Without the variable the
    suite runs exactly as before — no cache, bit-identical results.
    """
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        from repro.parallel import AnalysisCache

        activation = AnalysisCache(cache_dir).activate()
        activation.__enter__()
        config._repro_cache_activation = activation


def pytest_unconfigure(config):
    activation = getattr(config, "_repro_cache_activation", None)
    if activation is not None:
        activation.__exit__(None, None, None)
