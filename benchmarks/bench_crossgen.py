"""Cross-generation sweep bench (the generalized Section III study)."""

import pytest

from repro.experiments.crossgen import run_crossgen

_printed = set()


def _run(mode):
    result = run_crossgen(mode)
    if mode not in _printed:
        print()
        print(result.render())
        _printed.add(mode)
    return result


@pytest.mark.parametrize("mode", ["test", "benchmark"])
def test_crossgen_sweep(benchmark, mode):
    result = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    gms = result.geomeans()
    # each accelerator generation lifts the suite geomean on the same host
    assert gms[0] < gms[1] < gms[2]
    # the sweep flips offloading decisions for several kernels (Section III)
    assert len(result.flips()) >= 3
    # bandwidth-hungry kernels track the generational bandwidth curve
    by_kernel = dict(result.rows)
    conv = by_kernel["3dconv"]
    assert conv[0] < conv[2]
