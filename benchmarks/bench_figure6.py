"""Regenerates Figure 6: actual vs predicted speedup, test mode, 4 threads."""

from repro.experiments import run_figure6

_printed = False


def _run():
    global _printed
    result = run_figure6()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_figure6_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(result.rows) == 24
    # the predictor must order kernels correctly (shape fidelity)
    assert result.rank_correlation_proxy > 0.8
    # and make the overwhelming majority of decisions correctly
    assert result.decision_accuracy >= 0.8
    # matmuls vs a 4-thread host: GPU wins big, and the model knows it
    rows = {r.kernel: r for r in result.rows}
    assert rows["gemm"].true_speedup > 10
    assert rows["gemm"].predicted_speedup > 10
