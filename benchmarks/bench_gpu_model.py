"""Regenerates the Figures 4+5 artefact: MWP/CWP regime sweeps."""

from repro.experiments import run_figure45

_printed = False


def _run():
    global _printed
    result = run_figure45()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_figure45_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    # both major regimes appear across the sweeps
    cases = result.cases_seen()
    assert "memory-bound" in cases
    assert "compute-bound" in cases
    # the memory-heavy workload saturates MWP below max occupancy
    mem = {p.n_warps: p for p in result.memory_heavy}
    assert mem[64].mwp < 64
    assert mem[64].case == "memory-bound"
    # MWP and CWP are always within [1, N]
    for p in result.memory_heavy + result.compute_heavy:
        assert 1.0 <= p.mwp <= p.n_warps
        assert 1.0 <= p.cwp <= p.n_warps
        assert p.exec_cycles > 0
