"""The live claim scorecard: every shape-level paper claim must hold."""

from repro.experiments import run_summary

_printed = False


def _run():
    global _printed
    result = run_summary()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_summary_scorecard(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(result.claims) >= 9
    failing = [c.claim for c in result.claims if not c.holds]
    assert result.all_hold, f"claims regressed: {failing}"
