"""Scores every policy under the injected-fault scenario grid.

Checks the robustness invariants the fault-tolerance subsystem promises
(docs/ROBUSTNESS.md):

* fault-free runs suffer zero faults, retries and fallbacks;
* under the dead-GPU scenario every launch still completes (via host
  fallback) and the circuit breaker ends away from CLOSED;
* under flaky transfers the health-aware model-guided selector stays at
  the degraded-oracle optimum while blind always-gpu pays for retries.

``python benchmarks/bench_faults.py --tiny`` runs a reduced grid without
pytest — the CI smoke target.
"""

import sys

from repro.experiments import run_faults

_printed = False


def _run():
    global _printed
    result = run_faults()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_faults_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    # the control arm is untouched by the machinery
    for policy in ("always-gpu", "always-cpu", "model-guided", "oracle"):
        clean = result.get("fault-free", policy)
        assert clean.faults == clean.retries == clean.fallbacks == 0
        assert clean.breaker_state == "closed"
        assert clean.vs_oracle >= 1.0

    # dead GPU: all launches complete, the breaker leaves CLOSED, and the
    # always-gpu policy falls back on every single launch
    dead = result.get("dead-gpu", "always-gpu")
    assert dead.fallbacks == dead.launches
    assert dead.breaker_state != "closed"
    # ... at a cost within a retry-overhead hair of always-cpu
    dead_cpu = result.get("dead-gpu", "always-cpu")
    assert dead.total_seconds <= dead_cpu.total_seconds * 1.01

    # flaky transfers: retries happen, yet every policy completes and the
    # model-guided selector stays at the degraded-oracle optimum.  (No
    # ordering vs always-gpu: each policy's dispatch sequence draws its
    # own fault pattern, so a blind policy can land under 1.0 by luck.)
    flaky_gpu = result.get("flaky-transfer", "always-gpu")
    flaky_mg = result.get("flaky-transfer", "model-guided")
    assert flaky_gpu.faults > 0 and flaky_gpu.retries > 0
    assert flaky_mg.vs_oracle <= 1.02

    # OOM-prone: the footprint trigger fires only on benchmark-size data
    oom = result.get("oom-prone", "always-gpu")
    assert 0 < oom.fallbacks


def main(argv: list[str] | None = None) -> int:
    """Smoke entry point: tiny grid, no pytest-benchmark needed."""
    args = sys.argv[1:] if argv is None else argv
    launches = 4 if "--tiny" in args else 12
    result = run_faults(launches=launches)
    print(result.render())
    clean = result.get("fault-free", "model-guided")
    assert clean.faults == 0 and clean.fallbacks == 0
    dead = result.get("dead-gpu", "always-gpu")
    assert dead.fallbacks == dead.launches, "dead-GPU launch failed to fall back"
    return 0


if __name__ == "__main__":
    sys.exit(main())
