"""Scores the traffic-replay chaos grid at production scale.

Checks the invariants the replay subsystem promises (docs/ROBUSTNESS.md):

* every chaos scenario keeps steady-state selection accuracy within the
  stored drop of the no-chaos baseline, detects each chaos window within
  the stored fraction of its duration, and recovers within the stored
  simulated-seconds bound after it closes;
* every scenario's dispatch-overhead p99 is finite and no overhead
  observation is nonfinite;
* the overload scenarios keep the admission-queue depth bounded by its
  capacity while visibly shedding / degrading / deferring traffic;
* the hedged-chaos scenario arms speculative host backups, wins at least
  the stored number of races, strictly cuts the chaos-affected p99
  completion latency vs its unhedged twin, and duplicates at most the
  stored fraction of served seconds;
* a seeded rerun of the whole grid is byte-identical.

The thresholds live in ``benchmarks/traffic_thresholds.json`` so CI
fails on a regression without editing code.  ``python
benchmarks/bench_replay.py`` runs the full 10^5-requests-per-scenario
grid and writes ``BENCH_traffic.json``; ``--tiny`` is the 2000-request
CI smoke target (same checks, smaller trace).
"""

import json
import math
import sys
from pathlib import Path

from repro.experiments import run_replay

THRESHOLDS_PATH = Path(__file__).resolve().parent / "traffic_thresholds.json"

_printed = False


def load_thresholds() -> dict:
    return json.loads(THRESHOLDS_PATH.read_text())


def check(result, thresholds: dict) -> list[str]:
    """Every threshold violation in the grid, as human-readable strings."""
    max_drop = thresholds["max_accuracy_drop"]
    max_ttd_fraction = thresholds["max_ttd_fraction"]
    max_ttr_s = thresholds["max_ttr_s"]
    min_hedge_wins = thresholds["min_hedge_wins"]
    max_hedge_extra = thresholds["max_hedge_extra_fraction"]
    failures: list[str] = []
    for row in result.rows:
        s = row.score
        if s.overhead_nonfinite:
            failures.append(
                f"{row.scenario}: {s.overhead_nonfinite} nonfinite "
                "dispatch-overhead observations"
            )
        if not math.isfinite(s.overhead_p99_s):
            failures.append(f"{row.scenario}: dispatch-overhead p99 not finite")
        if row.flavour == "baseline":
            if s.fault_events or s.fallbacks:
                failures.append(f"{row.scenario}: chaos-free baseline faulted")
            if s.shed_fraction or s.degraded_fraction:
                failures.append(f"{row.scenario}: chaos-free baseline shed traffic")
        elif row.flavour == "chaos":
            if row.accuracy_drop > max_drop:
                failures.append(
                    f"{row.scenario}: steady accuracy dropped "
                    f"{row.accuracy_drop:.4f} > {max_drop} vs baseline"
                )
            for w in s.windows:
                duration = w.stop_s - w.start_s
                if not w.detected:
                    failures.append(f"{row.scenario}: window never detected")
                elif w.ttd_s > max_ttd_fraction * duration:
                    failures.append(
                        f"{row.scenario}: ttd {w.ttd_s:.3f}s > "
                        f"{max_ttd_fraction:g} x {duration:.3f}s window"
                    )
                if not w.recovered:
                    failures.append(f"{row.scenario}: never recovered")
                elif w.ttr_s > max_ttr_s:
                    failures.append(
                        f"{row.scenario}: ttr {w.ttr_s:.3f}s > {max_ttr_s}s"
                    )
        elif row.flavour == "hedged":
            u = row.unhedged
            if u is None or s.hedged == 0:
                failures.append(f"{row.scenario}: no backups armed")
            elif s.hedge_wins < min_hedge_wins:
                failures.append(
                    f"{row.scenario}: {s.hedge_wins} hedge wins < "
                    f"{min_hedge_wins}"
                )
            elif s.chaos_completion_p99_s >= u.chaos_completion_p99_s:
                failures.append(
                    f"{row.scenario}: chaos p99 {s.chaos_completion_p99_s:.6f}s "
                    f"not below unhedged {u.chaos_completion_p99_s:.6f}s"
                )
            if s.hedge_extra_fraction > max_hedge_extra:
                failures.append(
                    f"{row.scenario}: duplicated-work fraction "
                    f"{s.hedge_extra_fraction:.4f} > {max_hedge_extra}"
                )
        else:  # overload
            if row.capacity is not None and s.max_queue_depth > row.capacity:
                failures.append(
                    f"{row.scenario}: queue depth {s.max_queue_depth} "
                    f"exceeded capacity {row.capacity}"
                )
            if row.scenario == "overload-reject" and s.shed_fraction == 0.0:
                failures.append("overload-reject: nothing shed")
            if row.scenario == "overload-degrade" and s.degraded_fraction == 0.0:
                failures.append("overload-degrade: nothing degraded to host")
            if row.scenario == "overload-defer" and (
                s.deferred == 0 or s.resumed == 0
            ):
                failures.append("overload-defer: nothing deferred and resumed")
    return failures


def _run():
    global _printed
    result = run_replay()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_replay_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert check(result, load_thresholds()) == []
    assert result.passed


def main(argv: list[str] | None = None) -> int:
    """Smoke entry point: full or tiny grid, no pytest-benchmark needed."""
    args = sys.argv[1:] if argv is None else argv
    thresholds = load_thresholds()
    launches = 2_000 if "--tiny" in args else thresholds["min_launches"]
    result = run_replay(launches=launches)
    print(result.render())
    failures = check(result, thresholds)
    # determinism gate: the identical seeded invocation must serialize to
    # the exact same bytes
    rerun = run_replay(launches=launches)
    first = json.dumps(result.to_payload(), sort_keys=True)
    second = json.dumps(rerun.to_payload(), sort_keys=True)
    identical = first == second
    if not identical:
        failures.append("seeded rerun is not byte-identical")
    payload = {
        **result.to_payload(),
        "thresholds": thresholds,
        "rerun_identical": identical,
    }
    out = Path("BENCH_traffic.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
