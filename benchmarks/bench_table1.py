"""Regenerates Table I (cross-generation offloading speedups).

Checks the paper's anchor shapes:

* 3DCONV flips from slowdown on POWER8+K80 to speedup on POWER9+V100;
* the CORR/COVAR main kernels are dramatically better offloading
  candidates on the POWER8 platform than on the POWER9 platform;
* several kernels keep their decision but shift magnitude drastically.
"""

from repro.experiments import clear_caches, run_table1

PLAT_K80 = "POWER8+K80"
PLAT_V100 = "POWER9+V100"

_printed = False


def _run():
    global _printed
    result = run_table1()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_table1_regeneration(benchmark):
    clear_caches()
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    by_name = {r.kernel: r for r in result.rows}
    # 3DCONV: the paper's flagship generational flip (0.48x -> 4.41x)
    assert by_name["3dconv"].get("benchmark", PLAT_K80) < 1.0
    assert by_name["3dconv"].get("benchmark", PLAT_V100) > 1.0
    # CORR main kernel: far better candidate on the POWER8 platform
    corr = by_name["corr_corr"]
    assert corr.get("benchmark", PLAT_K80) > 3 * corr.get("benchmark", PLAT_V100)
    # decisions flip across generations for several kernels
    assert len(result.decision_flips()) >= 5
    # every kernel appears at every (mode, platform) point
    assert len(result.rows) == 24
