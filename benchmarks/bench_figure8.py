"""Regenerates Figure 8: suite speedup under target-selection policies.

The paper's headline result: switching the 160-thread-host runtime from
always-offload to model-guided selection improves the geometric-mean suite
speedup (10.2x → 14.2x test, 2.9x → 3.7x benchmark on their hardware).
The shape this reproduction must hold: model-guided ≥ always-offload in
both modes, with close-call mispredictions surviving (the paper's 2DCONV
case predicted 0.913x against a true 1.48x).
"""

import pytest

from repro.experiments import run_figure8

_printed = set()


def _run(mode):
    result = run_figure8(mode)
    if mode not in _printed:
        print()
        print(result.render())
        _printed.add(mode)
    return result


@pytest.mark.parametrize("mode", ["test", "benchmark"])
def test_figure8_regeneration(benchmark, mode):
    result = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    gms = result.geomeans()
    # the paper's headline: model-guided selection beats always-offload
    assert gms["model-guided"] >= gms["always-gpu"] * 0.999
    # no policy beats the oracle
    assert gms["model-guided"] <= gms["oracle"] + 1e-9
    assert gms["always-gpu"] <= gms["oracle"] + 1e-9
    # the suite still benefits from the GPU overall
    assert gms["always-gpu"] > 1.0
    # close-call mispredictions survive, as in the paper's discussion
    assert len(result.misses()) >= 1
