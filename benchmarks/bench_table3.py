"""Regenerates Table III (V100 device/bus parameters) with Jia-style probes."""

from repro.experiments import run_table3

_printed = False


def _run():
    global _printed
    result = run_table3()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_table3_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    # the pointer chase recovers the Jia-report latencies fed to the model
    assert result.measured_l1 == 28.0
    assert result.measured_l2 == 193.0
    assert result.measured_dram == 400.0
    params = dict(result.parameters())
    assert params["#SMs"] == 80
    assert params["Memory Bandwidth"] == "900 GB/s"
    assert params["Max Warps/SM"] == 64
