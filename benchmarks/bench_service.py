"""Scores the multi-tenant offload service against its legacy-FIFO twins.

Checks the invariants the offload service promises (docs/ROBUSTNESS.md):

* every scenario keeps steady-state selection accuracy within the
  stored delta of its legacy twin (the service may change *when*
  launches run, never *what* is selected);
* per-tenant p99 completion latency stays within the stored fairness
  ratio (max/min over tenants), uniform and skewed mixes alike;
* at least the stored number of scenarios show transfer/compute overlap
  beating the legacy serial FIFO on the tail the scenario stresses
  (chaos-window p99 for fault storms, trace-wide p99 for bursts);
* every scenario's completion p99 is finite and both twins served the
  whole trace;
* a seeded rerun of the whole grid is byte-identical.

The thresholds live in ``benchmarks/traffic_thresholds.json`` so CI
fails on a regression without editing code.  ``python
benchmarks/bench_service.py`` runs the full grid at
``min_service_launches`` requests per scenario and writes
``BENCH_service.json``; ``--tiny`` is the 2000-request CI smoke target
(same checks, smaller trace).
"""

import json
import math
import sys
from pathlib import Path

from repro.experiments import run_service

THRESHOLDS_PATH = Path(__file__).resolve().parent / "traffic_thresholds.json"

_printed = False


def load_thresholds() -> dict:
    return json.loads(THRESHOLDS_PATH.read_text())


def check(result, thresholds: dict) -> list[str]:
    """Every threshold violation in the grid, as human-readable strings."""
    max_delta = thresholds["max_service_accuracy_delta"]
    max_fairness = thresholds["max_fairness_p99"]
    min_wins = thresholds["min_overlap_wins"]
    failures: list[str] = []
    for row in result.rows:
        s = row.score
        if not math.isfinite(s.completion_p99_s):
            failures.append(f"{row.scenario}: completion p99 not finite")
        if s.overhead_nonfinite:
            failures.append(
                f"{row.scenario}: {s.overhead_nonfinite} nonfinite "
                "dispatch-overhead observations"
            )
        if s.requests != row.legacy.requests or s.launches != row.legacy.launches:
            failures.append(
                f"{row.scenario}: twins disagree on served launches "
                f"({s.launches} vs {row.legacy.launches})"
            )
        if abs(row.accuracy_delta) > max_delta:
            failures.append(
                f"{row.scenario}: steady accuracy moved "
                f"{row.accuracy_delta:+.4f} vs the FIFO twin "
                f"(|delta| > {max_delta})"
            )
        if not (math.isfinite(s.fairness_p99) and s.fairness_p99 <= max_fairness):
            failures.append(
                f"{row.scenario}: tenant p99 fairness {s.fairness_p99:.3f} "
                f"> {max_fairness}"
            )
        if not s.tenants:
            failures.append(f"{row.scenario}: no per-tenant percentiles recorded")
    if result.overlap_wins < min_wins:
        failures.append(
            f"only {result.overlap_wins} overlap wins across the grid "
            f"(< {min_wins}): pipelining never beat the serial FIFO"
        )
    return failures


def _run():
    global _printed
    result = run_service()
    if not _printed:
        print()
        print(result.render())
        _printed = True
    return result


def test_service_regeneration(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert check(result, load_thresholds()) == []
    assert result.passed


def main(argv: list[str] | None = None) -> int:
    """Smoke entry point: full or tiny grid, no pytest-benchmark needed."""
    args = sys.argv[1:] if argv is None else argv
    thresholds = load_thresholds()
    launches = 2_000 if "--tiny" in args else thresholds["min_service_launches"]
    result = run_service(launches=launches)
    print(result.render())
    failures = check(result, thresholds)
    # determinism gate: the identical seeded invocation must serialize to
    # the exact same bytes
    rerun = run_service(launches=launches)
    first = json.dumps(result.to_payload(), sort_keys=True)
    second = json.dumps(rerun.to_payload(), sort_keys=True)
    identical = first == second
    if not identical:
        failures.append("seeded rerun is not byte-identical")
    payload = {
        **result.to_payload(),
        "thresholds": thresholds,
        "rerun_identical": identical,
    }
    out = Path("BENCH_service.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
